//! Ready-made training harnesses for the paper's three tasks.
//!
//! Each harness reproduces the recipe of Section II-B at a configurable
//! scale (the paper's exact dimensions are one constructor away, but the
//! defaults are sized so a full threshold sweep finishes on a laptop):
//!
//! * char-level LM — Adam, lr 2e-3, batch 64, BPTT 100 in the paper,
//! * word-level LM — SGD lr 1, decay 1.2, clip 5, dropout 0.5, BPTT 35,
//! * sequential digits — Adam, lr 1e-3.
//!
//! Every harness trains with a [`StatePruner`] active in the forward pass
//! (threshold 0 ⇒ dense baseline) and reports the test metric together
//! with the measured state sparsity, i.e. one point of Figs. 2–4.

use crate::prune::StatePruner;
use crate::sparsity;
use zskip_data::{BpttBatcher, CharCorpus, DigitSet, WordCorpus};
use zskip_nn::models::{CarryState, CharLm, SeqClassifier, WordLm};
use zskip_nn::{Adam, GradClip, Optimizer, Parameterized, Sgd, StateTransform};
use zskip_tensor::{Matrix, SeedableStream};

/// Result of one training run: a single point of a Figs. 2–4 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRunResult {
    /// Pruning threshold trained with.
    pub threshold: f32,
    /// Task metric on the test split (BPC, PPW or MER %).
    pub metric: f64,
    /// Mean element-wise state sparsity measured on the test trace.
    pub sparsity: f64,
}

// ---------------------------------------------------------------------------
// Character-level language modeling (Fig. 2)
// ---------------------------------------------------------------------------

/// Configuration for the char-LM harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CharTaskConfig {
    /// LSTM width `dh` (paper: 1000).
    pub hidden: usize,
    /// Total synthetic corpus size in characters (paper: 5,852,000).
    pub corpus_chars: usize,
    /// Batch lanes (paper: 64).
    pub batch: usize,
    /// BPTT window (paper: 100).
    pub bptt: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (paper: 2e-3).
    pub lr: f32,
    /// Seed for corpus, init and shuffling.
    pub seed: u64,
}

impl Default for CharTaskConfig {
    fn default() -> Self {
        Self {
            hidden: 96,
            corpus_chars: 60_000,
            batch: 16,
            bptt: 40,
            epochs: 6,
            lr: 3e-3,
            seed: 42,
        }
    }
}

impl CharTaskConfig {
    /// The paper's full-scale configuration (slow on a laptop).
    pub fn paper_scale() -> Self {
        Self {
            hidden: 1000,
            corpus_chars: 5_852_000,
            batch: 64,
            bptt: 100,
            epochs: 10,
            lr: 2e-3,
            seed: 42,
        }
    }
}

/// A trained char model plus everything needed for downstream analysis.
#[derive(Debug)]
pub struct CharOutcome {
    /// Summary point for the sweep curve.
    pub result: TaskRunResult,
    /// The trained model.
    pub model: CharLm,
    /// The corpus it was trained on.
    pub corpus: CharCorpus,
}

/// Which gradient the pruning non-linearity propagates during training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradientMode {
    /// The paper's straight-through estimator (Eq. 6): gradients reach
    /// the dense state so sub-threshold values keep learning.
    StraightThrough,
    /// The exact rectangular derivative: zero gradient at pruned
    /// positions (the ablation the paper argues against).
    Masked,
}

/// How the pruning threshold evolves over training epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdSchedule {
    /// The paper's recipe: the full threshold from the first step.
    Constant,
    /// Linear ramp from zero to the full threshold over the first
    /// `warmup_epochs` epochs — a common stabilization trick for larger
    /// thresholds.
    LinearRamp {
        /// Epochs to reach the full threshold.
        warmup_epochs: usize,
    },
}

impl ThresholdSchedule {
    /// Threshold to use during `epoch` given the target `threshold`.
    pub fn at_epoch(&self, threshold: f32, epoch: usize) -> f32 {
        match self {
            ThresholdSchedule::Constant => threshold,
            ThresholdSchedule::LinearRamp { warmup_epochs } => {
                if *warmup_epochs == 0 || epoch >= *warmup_epochs {
                    threshold
                } else {
                    threshold * (epoch + 1) as f32 / *warmup_epochs as f32
                }
            }
        }
    }
}

/// Trains a char-level LM with the given pruning threshold and reports
/// test BPC plus measured sparsity (straight-through gradients, constant
/// threshold — the paper's recipe).
pub fn train_char(config: &CharTaskConfig, threshold: f32) -> CharOutcome {
    train_char_with(
        config,
        threshold,
        GradientMode::StraightThrough,
        ThresholdSchedule::Constant,
    )
}

/// Full-control char-LM trainer: choose the pruning gradient and the
/// threshold schedule (the ablations DESIGN.md §8 calls out).
pub fn train_char_with(
    config: &CharTaskConfig,
    threshold: f32,
    mode: GradientMode,
    schedule: ThresholdSchedule,
) -> CharOutcome {
    let corpus = CharCorpus::generate(config.corpus_chars, config.seed);
    let mut rng = SeedableStream::new(config.seed ^ 0xC0FFEE);
    let mut model = CharLm::new(corpus.vocab_size(), config.hidden, &mut rng);
    let mut opt = Adam::new(config.lr);

    for epoch in 0..config.epochs {
        let t = schedule.at_epoch(threshold, epoch);
        let transform: Box<dyn StateTransform> = match mode {
            GradientMode::StraightThrough => Box::new(StatePruner::new(t)),
            GradientMode::Masked => Box::new(crate::prune::MaskedGradientPruner::new(t)),
        };
        let mut batcher = BpttBatcher::from_bytes(corpus.train(), config.batch, config.bptt);
        let mut state = CarryState::zeros(config.batch, config.hidden);
        while let Some(w) = batcher.next_window() {
            model.zero_grads();
            model.train_batch(&w.inputs, &w.targets, &mut state, transform.as_ref());
            opt.step(&mut model);
        }
    }

    let pruner = StatePruner::new(threshold);
    let (bpc, sparsity) = eval_char(&model, &corpus, config, &pruner);
    CharOutcome {
        result: TaskRunResult {
            threshold,
            metric: bpc,
            sparsity,
        },
        model,
        corpus,
    }
}

/// A trained GRU char model plus its corpus (the cell-type ablation).
#[derive(Debug)]
pub struct GruCharOutcome {
    /// Summary point.
    pub result: TaskRunResult,
    /// The trained model.
    pub model: zskip_nn::models::GruCharLm,
    /// The corpus it was trained on.
    pub corpus: CharCorpus,
}

/// Trains a GRU char-level LM with the same recipe as [`train_char`] —
/// used to test whether state pruning generalizes beyond LSTMs. Note the
/// GRU's only memory is the pruned `h` (no protected cell state), so the
/// same threshold is expected to bite harder.
pub fn train_char_gru(config: &CharTaskConfig, threshold: f32) -> GruCharOutcome {
    let corpus = CharCorpus::generate(config.corpus_chars, config.seed);
    let mut rng = SeedableStream::new(config.seed ^ 0xC0FFEE);
    let mut model = zskip_nn::models::GruCharLm::new(corpus.vocab_size(), config.hidden, &mut rng);
    let pruner = StatePruner::new(threshold);
    let mut opt = Adam::new(config.lr);

    for _epoch in 0..config.epochs {
        let mut batcher = BpttBatcher::from_bytes(corpus.train(), config.batch, config.bptt);
        let mut state = CarryState::zeros(config.batch, config.hidden);
        while let Some(w) = batcher.next_window() {
            model.zero_grads();
            model.train_batch(&w.inputs, &w.targets, &mut state, &pruner);
            opt.step(&mut model);
        }
    }

    // Evaluate on the test split.
    let mut batcher = BpttBatcher::from_bytes(corpus.test(), config.batch, config.bptt);
    let mut state = CarryState::zeros(config.batch, config.hidden);
    let mut acc = zskip_nn::metrics::MetricAccumulator::new();
    let mut trace: Vec<Matrix> = Vec::new();
    let mut window_idx = 0usize;
    while let Some(w) = batcher.next_window() {
        let stats = model.eval_batch(&w.inputs, &w.targets, &mut state, &pruner);
        acc.add(stats.mean_nats, stats.tokens, stats.correct);
        if window_idx < 2 {
            let mut probe = CarryState {
                h: state.h.clone(),
                c: state.c.clone(),
            };
            trace.extend(model.state_trace(&w.inputs, &mut probe, &pruner));
        }
        window_idx += 1;
    }
    GruCharOutcome {
        result: TaskRunResult {
            threshold,
            metric: acc.bpc() as f64,
            sparsity: sparsity::mean_sparsity(&trace),
        },
        model,
        corpus,
    }
}

/// Evaluates test BPC and mean state sparsity for a trained char model.
pub fn eval_char(
    model: &CharLm,
    corpus: &CharCorpus,
    config: &CharTaskConfig,
    transform: &dyn StateTransform,
) -> (f64, f64) {
    let mut batcher = BpttBatcher::from_bytes(corpus.test(), config.batch, config.bptt);
    let mut state = CarryState::zeros(config.batch, config.hidden);
    let mut acc = zskip_nn::metrics::MetricAccumulator::new();
    let mut trace: Vec<Matrix> = Vec::new();
    let mut window_idx = 0usize;
    while let Some(w) = batcher.next_window() {
        let stats = model.eval_batch(&w.inputs, &w.targets, &mut state, transform);
        acc.add(stats.mean_nats, stats.tokens, stats.correct);
        if window_idx < 2 {
            let mut probe = CarryState {
                h: state.h.clone(),
                c: state.c.clone(),
            };
            trace.extend(model.state_trace(&w.inputs, &mut probe, transform));
        }
        window_idx += 1;
    }
    (acc.bpc() as f64, sparsity::mean_sparsity(&trace))
}

/// Collects a state trace from the test split with `lanes` parallel
/// sequences over `steps` steps — the raw material for Fig. 7's joint
/// sparsity and for the accelerator simulation.
pub fn char_state_trace(
    model: &CharLm,
    corpus: &CharCorpus,
    lanes: usize,
    steps: usize,
    transform: &dyn StateTransform,
) -> Vec<Matrix> {
    let mut batcher = BpttBatcher::from_bytes(corpus.test(), lanes, steps);
    let mut state = CarryState::zeros(lanes, model.hidden_dim());
    let w = batcher.next_window().expect("test split too small");
    model.state_trace(&w.inputs, &mut state, transform)
}

// ---------------------------------------------------------------------------
// Word-level language modeling (Fig. 3)
// ---------------------------------------------------------------------------

/// Configuration for the word-LM harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WordTaskConfig {
    /// Vocabulary size (paper: 10,000).
    pub vocab: usize,
    /// Embedding size (paper: 300).
    pub embedding: usize,
    /// LSTM width (paper: 300).
    pub hidden: usize,
    /// Total corpus size in tokens (paper: 1,084,000).
    pub corpus_tokens: usize,
    /// Batch lanes (paper uses 20-ish; we default smaller).
    pub batch: usize,
    /// BPTT window (paper: 35).
    pub bptt: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial SGD learning rate (paper: 1.0).
    pub lr: f32,
    /// Per-epoch learning-rate decay divisor (paper: 1.2).
    pub lr_decay: f32,
    /// Gradient-norm clip (paper: 5.0).
    pub clip: f32,
    /// Dropout probability on non-recurrent connections (paper: 0.5).
    pub dropout: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for WordTaskConfig {
    fn default() -> Self {
        Self {
            vocab: 800,
            embedding: 48,
            hidden: 64,
            corpus_tokens: 30_000,
            batch: 16,
            bptt: 35,
            epochs: 4,
            lr: 1.0,
            lr_decay: 1.2,
            clip: 5.0,
            dropout: 0.3,
            seed: 42,
        }
    }
}

impl WordTaskConfig {
    /// The paper's full-scale configuration.
    pub fn paper_scale() -> Self {
        Self {
            vocab: 10_000,
            embedding: 300,
            hidden: 300,
            corpus_tokens: 1_084_000,
            batch: 20,
            bptt: 35,
            epochs: 13,
            lr: 1.0,
            lr_decay: 1.2,
            clip: 5.0,
            dropout: 0.5,
            seed: 42,
        }
    }
}

/// A trained word model plus its corpus.
#[derive(Debug)]
pub struct WordOutcome {
    /// Summary point for the sweep curve.
    pub result: TaskRunResult,
    /// The trained model.
    pub model: WordLm,
    /// The corpus it was trained on.
    pub corpus: WordCorpus,
}

/// Trains a word-level LM with the given pruning threshold and reports
/// test PPW plus measured sparsity.
pub fn train_word(config: &WordTaskConfig, threshold: f32) -> WordOutcome {
    let corpus = WordCorpus::generate(config.vocab, config.corpus_tokens, config.seed);
    let mut rng = SeedableStream::new(config.seed ^ 0xBEEF);
    let mut model = WordLm::new(
        config.vocab,
        config.embedding,
        config.hidden,
        config.dropout,
        &mut rng,
    );
    let pruner = StatePruner::new(threshold);
    let mut opt = Sgd::new(config.lr);
    let clip = GradClip::new(config.clip);
    let mut drop_rng = SeedableStream::new(config.seed ^ 0xD50);

    for epoch in 0..config.epochs {
        let mut batcher = BpttBatcher::new(corpus.train(), config.batch, config.bptt);
        let mut state = CarryState::zeros(config.batch, config.hidden);
        while let Some(w) = batcher.next_window() {
            model.zero_grads();
            model.train_batch(&w.inputs, &w.targets, &mut state, &pruner, &mut drop_rng);
            clip.apply(&mut model);
            opt.step(&mut model);
        }
        if epoch >= 1 {
            opt.decay(config.lr_decay);
        }
    }

    let (ppw, sparsity) = eval_word(&model, &corpus, config, &pruner);
    WordOutcome {
        result: TaskRunResult {
            threshold,
            metric: ppw,
            sparsity,
        },
        model,
        corpus,
    }
}

/// Evaluates test PPW and mean state sparsity for a trained word model.
pub fn eval_word(
    model: &WordLm,
    corpus: &WordCorpus,
    config: &WordTaskConfig,
    transform: &dyn StateTransform,
) -> (f64, f64) {
    let mut batcher = BpttBatcher::new(corpus.test(), config.batch, config.bptt);
    let mut state = CarryState::zeros(config.batch, config.hidden);
    let mut acc = zskip_nn::metrics::MetricAccumulator::new();
    let mut trace: Vec<Matrix> = Vec::new();
    let mut window_idx = 0usize;
    while let Some(w) = batcher.next_window() {
        let stats = model.eval_batch(&w.inputs, &w.targets, &mut state, transform);
        acc.add(stats.mean_nats, stats.tokens, stats.correct);
        if window_idx < 2 {
            let mut probe = CarryState {
                h: state.h.clone(),
                c: state.c.clone(),
            };
            trace.extend(model.state_trace(&w.inputs, &mut probe, transform));
        }
        window_idx += 1;
    }
    (acc.ppw() as f64, sparsity::mean_sparsity(&trace))
}

/// Collects a `lanes × dh` state trace for the word task.
pub fn word_state_trace(
    model: &WordLm,
    corpus: &WordCorpus,
    lanes: usize,
    steps: usize,
    transform: &dyn StateTransform,
) -> Vec<Matrix> {
    let mut batcher = BpttBatcher::new(corpus.test(), lanes, steps);
    let mut state = CarryState::zeros(lanes, model.hidden_dim());
    let w = batcher.next_window().expect("test split too small");
    model.state_trace(&w.inputs, &mut state, transform)
}

// ---------------------------------------------------------------------------
// Sequential digit classification (Fig. 4)
// ---------------------------------------------------------------------------

/// How images are unrolled into sequences for the digits task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanOrder {
    /// One pixel per timestep (784 steps at full resolution) — the
    /// paper's protocol (Le et al. \[15\]). Needs long training to learn.
    Pixel,
    /// One image row per timestep (28 steps of 28-wide inputs) — the
    /// scaled-down protocol used at quick experiment scale so the sweep
    /// runs in minutes. The recurrent `Wh·h` product still dominates
    /// (`dh ≥ row width`), so pruning behaviour is preserved.
    Row,
}

/// Configuration for the sequential-digits harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DigitsTaskConfig {
    /// LSTM width (paper: 100).
    pub hidden: usize,
    /// Training images (paper: 50,000).
    pub train_images: usize,
    /// Test images (paper: 10,000).
    pub test_images: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Average-pool factor applied before scanning (1 = full 784-step
    /// sequences as in the paper; 2 or 4 for fast runs).
    pub downsample: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Pixel-by-pixel (paper) or row-by-row (fast) unrolling.
    pub scan: ScanOrder,
    /// Seed.
    pub seed: u64,
}

impl Default for DigitsTaskConfig {
    fn default() -> Self {
        Self {
            hidden: 48,
            train_images: 600,
            test_images: 200,
            batch: 20,
            downsample: 2,
            epochs: 6,
            lr: 2e-3,
            scan: ScanOrder::Row,
            seed: 42,
        }
    }
}

impl DigitsTaskConfig {
    /// The paper's full-scale configuration (pixel-by-pixel scan).
    pub fn paper_scale() -> Self {
        Self {
            hidden: 100,
            train_images: 50_000,
            test_images: 10_000,
            batch: 50,
            downsample: 1,
            epochs: 10,
            lr: 1e-3,
            scan: ScanOrder::Pixel,
            seed: 42,
        }
    }

    /// Input width per LSTM step implied by the scan order.
    pub fn input_dim(&self) -> usize {
        match self.scan {
            ScanOrder::Pixel => 1,
            ScanOrder::Row => 28 / self.downsample,
        }
    }
}

/// Builds the time-major step matrices for one batch of images under the
/// configured scan order.
fn digit_batch_xs(
    set: &DigitSet,
    range: std::ops::Range<usize>,
    config: &DigitsTaskConfig,
) -> (Vec<Matrix>, Vec<usize>) {
    match config.scan {
        ScanOrder::Pixel => {
            let (pixels, labels) = set.batch_sequences(range, config.downsample);
            let xs = pixels
                .into_iter()
                .map(|step| {
                    let b = step.len();
                    Matrix::from_vec(b, 1, step)
                })
                .collect();
            (xs, labels)
        }
        ScanOrder::Row => {
            let width = config.input_dim();
            let (rows, labels) = set.batch_rows(range, config.downsample);
            let xs = rows
                .into_iter()
                .map(|step| {
                    let b = step.len() / width;
                    Matrix::from_vec(b, width, step)
                })
                .collect();
            (xs, labels)
        }
    }
}

/// A trained digit classifier plus its datasets.
#[derive(Debug)]
pub struct DigitsOutcome {
    /// Summary point for the sweep curve.
    pub result: TaskRunResult,
    /// The trained model.
    pub model: SeqClassifier,
    /// Held-out test set.
    pub test_set: DigitSet,
}

/// Trains the sequential digit classifier with the given pruning
/// threshold and reports test MER (%) plus measured sparsity.
pub fn train_digits(config: &DigitsTaskConfig, threshold: f32) -> DigitsOutcome {
    let train_set = DigitSet::generate(config.train_images, config.seed);
    let test_set = DigitSet::generate(config.test_images, config.seed ^ 0x7E57);
    let mut rng = SeedableStream::new(config.seed ^ 0xD161);
    let mut model = SeqClassifier::with_input_dim(10, config.input_dim(), config.hidden, &mut rng);
    let pruner = StatePruner::new(threshold);
    let mut opt = Adam::new(config.lr);

    for _epoch in 0..config.epochs {
        let mut start = 0;
        while start + config.batch <= train_set.len() {
            let (xs, labels) = digit_batch_xs(&train_set, start..start + config.batch, config);
            model.zero_grads();
            model.train_batch_xs(&xs, &labels, &pruner);
            opt.step(&mut model);
            start += config.batch;
        }
    }

    let (mer, sparsity) = eval_digits(&model, &test_set, config, &pruner);
    DigitsOutcome {
        result: TaskRunResult {
            threshold,
            metric: mer,
            sparsity,
        },
        model,
        test_set,
    }
}

/// Evaluates test MER (%) and mean state sparsity for a trained digit
/// classifier.
pub fn eval_digits(
    model: &SeqClassifier,
    test_set: &DigitSet,
    config: &DigitsTaskConfig,
    transform: &dyn StateTransform,
) -> (f64, f64) {
    let mut acc = zskip_nn::metrics::MetricAccumulator::new();
    let mut trace: Vec<Matrix> = Vec::new();
    let mut start = 0;
    let mut batch_idx = 0usize;
    while start + config.batch <= test_set.len() {
        let (xs, labels) = digit_batch_xs(test_set, start..start + config.batch, config);
        let stats = model.eval_batch_xs(&xs, &labels, transform);
        acc.add(stats.mean_nats, stats.tokens, stats.correct);
        if batch_idx < 1 {
            trace.extend(model.state_trace_xs(&xs, transform));
        }
        start += config.batch;
        batch_idx += 1;
    }
    (acc.mer_percent() as f64, sparsity::mean_sparsity(&trace))
}

/// Collects a `lanes × dh` state trace for the digits task.
pub fn digits_state_trace(
    model: &SeqClassifier,
    test_set: &DigitSet,
    lanes: usize,
    config: &DigitsTaskConfig,
    transform: &dyn StateTransform,
) -> Vec<Matrix> {
    assert!(lanes <= test_set.len(), "not enough test images");
    let (xs, _) = digit_batch_xs(test_set, 0..lanes, config);
    model.state_trace_xs(&xs, transform)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_char_config() -> CharTaskConfig {
        CharTaskConfig {
            hidden: 32,
            corpus_chars: 30_000,
            batch: 8,
            bptt: 16,
            epochs: 6,
            lr: 5e-3,
            seed: 7,
        }
    }

    #[test]
    fn char_harness_beats_uniform() {
        let out = train_char(&tiny_char_config(), 0.0);
        // Uniform over 50 symbols = log2(50) ≈ 5.64 BPC; even one epoch of
        // a tiny model must do noticeably better on Markov text.
        assert!(out.result.metric < 4.8, "BPC {}", out.result.metric);
        assert_eq!(out.result.threshold, 0.0);
    }

    #[test]
    fn char_pruning_produces_sparsity() {
        let dense = train_char(&tiny_char_config(), 0.0);
        let pruned = train_char(&tiny_char_config(), 0.2);
        assert!(pruned.result.sparsity > dense.result.sparsity + 0.05);
    }

    #[test]
    fn char_trace_shapes() {
        let out = train_char(&tiny_char_config(), 0.1);
        let trace = char_state_trace(&out.model, &out.corpus, 8, 10, &StatePruner::new(0.1));
        assert_eq!(trace.len(), 10);
        assert_eq!(trace[0].rows(), 8);
        assert_eq!(trace[0].cols(), 32);
    }

    #[test]
    fn threshold_schedule_ramps_linearly() {
        let s = ThresholdSchedule::LinearRamp { warmup_epochs: 4 };
        assert!((s.at_epoch(0.4, 0) - 0.1).abs() < 1e-6);
        assert!((s.at_epoch(0.4, 1) - 0.2).abs() < 1e-6);
        assert_eq!(s.at_epoch(0.4, 4), 0.4);
        assert_eq!(s.at_epoch(0.4, 10), 0.4);
        assert_eq!(ThresholdSchedule::Constant.at_epoch(0.4, 0), 0.4);
    }

    #[test]
    fn masked_gradient_mode_trains() {
        let out = train_char_with(
            &tiny_char_config(),
            0.3,
            GradientMode::Masked,
            ThresholdSchedule::Constant,
        );
        assert!(out.result.metric.is_finite());
        assert!(out.result.sparsity > 0.0);
    }

    #[test]
    fn word_harness_runs_and_reports() {
        let config = WordTaskConfig {
            vocab: 60,
            embedding: 12,
            hidden: 16,
            corpus_tokens: 3_000,
            batch: 4,
            bptt: 10,
            epochs: 1,
            dropout: 0.2,
            ..WordTaskConfig::default()
        };
        let out = train_word(&config, 0.05);
        assert!(out.result.metric.is_finite());
        // PPW below vocab size means better than the uniform model.
        assert!(out.result.metric < 60.0, "PPW {}", out.result.metric);
    }

    #[test]
    fn digits_harness_runs_and_reports() {
        let config = DigitsTaskConfig {
            hidden: 16,
            train_images: 60,
            test_images: 40,
            batch: 20,
            downsample: 4,
            epochs: 2,
            ..DigitsTaskConfig::default()
        };
        let out = train_digits(&config, 0.05);
        assert!(out.result.metric >= 0.0 && out.result.metric <= 100.0);
        let trace = digits_state_trace(
            &out.model,
            &out.test_set,
            16,
            &config,
            &StatePruner::new(0.05),
        );
        assert_eq!(trace[0].rows(), 16);
    }
}
