//! Hidden-state threshold pruning (Eq. 5) with straight-through gradients
//! (Eq. 6).
//!
//! During the feed-forward computation the state entering Eq. 4 is
//!
//! ```text
//! hp[j] = 0      if |h[j]| < T
//! hp[j] = h[j]   if |h[j]| ≥ T
//! ```
//!
//! while the parameter update sees the dense state: the derivative of the
//! discontinuous rectangular gate is approximated by the identity
//! (`∂L/∂h ≈ ∂L/∂hp`), the technique BinaryConnect \[14\] introduced for
//! binarized weights, applied here to activations. Keeping the dense value
//! alive under the threshold is what lets "state values initially lied
//! within the threshold" re-emerge later in training.

use serde::{Deserialize, Serialize};
use zskip_nn::StateTransform;
use zskip_tensor::Matrix;

/// Threshold pruner with the paper's straight-through gradient.
///
/// # Example
///
/// ```
/// use zskip_core::StatePruner;
/// use zskip_nn::StateTransform;
/// use zskip_tensor::Matrix;
///
/// let pruner = StatePruner::new(0.3);
/// let h = Matrix::from_rows(&[&[0.1, -0.4]]);
/// assert_eq!(pruner.apply(&h).row(0), &[0.0, -0.4]);
/// // Straight-through: gradients pass unchanged.
/// let d = Matrix::from_rows(&[&[1.0, 2.0]]);
/// assert_eq!(pruner.backward(&h, &d), d);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatePruner {
    threshold: f32,
}

impl StatePruner {
    /// Creates a pruner with threshold `T ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a non-negative finite value"
        );
        Self { threshold }
    }

    /// The pruning threshold `T`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Prunes a slice in place.
    pub fn prune_slice(&self, h: &mut [f32]) {
        for v in h {
            if v.abs() < self.threshold {
                *v = 0.0;
            }
        }
    }

    /// Fraction of entries a batch of states would lose (`|h| < T`).
    pub fn would_prune_fraction(&self, h: &Matrix) -> f64 {
        if h.is_empty() {
            return 0.0;
        }
        let n = h
            .as_slice()
            .iter()
            .filter(|v| v.abs() < self.threshold)
            .count();
        n as f64 / h.len() as f64
    }
}

impl StateTransform for StatePruner {
    fn apply(&self, h: &Matrix) -> Matrix {
        let mut out = h.clone();
        self.prune_slice(out.as_mut_slice());
        out
    }
    // `backward` keeps the default straight-through estimator.
}

/// Ablation variant: the *exact* derivative of the rectangular pruning
/// function, which is zero wherever the state was pruned. The paper argues
/// for the straight-through approximation instead; benchmarks compare the
/// two training behaviours.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MaskedGradientPruner {
    threshold: f32,
}

impl MaskedGradientPruner {
    /// Creates the masked-gradient pruner.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a non-negative finite value"
        );
        Self { threshold }
    }

    /// The pruning threshold `T`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl StateTransform for MaskedGradientPruner {
    fn apply(&self, h: &Matrix) -> Matrix {
        StatePruner::new(self.threshold).apply(h)
    }

    fn backward(&self, h_raw: &Matrix, d_transformed: &Matrix) -> Matrix {
        assert_eq!(h_raw.rows(), d_transformed.rows(), "shape mismatch");
        assert_eq!(h_raw.cols(), d_transformed.cols(), "shape mismatch");
        let mut out = d_transformed.clone();
        for (g, h) in out.as_mut_slice().iter_mut().zip(h_raw.as_slice()) {
            if h.abs() < self.threshold {
                *g = 0.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_below_threshold_only() {
        let p = StatePruner::new(0.5);
        let h = Matrix::from_rows(&[&[0.49, 0.5, -0.49, -0.5, 0.0]]);
        assert_eq!(p.apply(&h).row(0), &[0.0, 0.5, 0.0, -0.5, 0.0]);
    }

    #[test]
    fn zero_threshold_is_identity() {
        let p = StatePruner::new(0.0);
        let h = Matrix::from_rows(&[&[0.1, -0.2, 0.0]]);
        assert_eq!(p.apply(&h), h);
    }

    #[test]
    fn pruning_is_idempotent() {
        let p = StatePruner::new(0.3);
        let h = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let once = p.apply(&h);
        let twice = p.apply(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn larger_threshold_prunes_more() {
        let h = Matrix::from_fn(8, 8, |r, c| ((r + c * 3) as f32 * 0.21).sin());
        let small = StatePruner::new(0.2).apply(&h).sparsity();
        let large = StatePruner::new(0.8).apply(&h).sparsity();
        assert!(large > small);
    }

    #[test]
    fn ste_gradient_is_identity() {
        let p = StatePruner::new(0.5);
        let h = Matrix::from_rows(&[&[0.1, 0.9]]);
        let d = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(p.backward(&h, &d), d);
    }

    #[test]
    fn masked_gradient_zeroes_pruned_positions() {
        let p = MaskedGradientPruner::new(0.5);
        let h = Matrix::from_rows(&[&[0.1, 0.9, -0.3, -0.8]]);
        let d = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        assert_eq!(p.backward(&h, &d).row(0), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn would_prune_fraction_matches_apply() {
        let p = StatePruner::new(0.4);
        let h = Matrix::from_fn(5, 5, |r, c| ((r * 5 + c) as f32 * 0.13).cos());
        let predicted = p.would_prune_fraction(&h);
        let actual = p.apply(&h).sparsity();
        assert!((predicted - actual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_threshold() {
        let _ = StatePruner::new(-0.1);
    }
}
