//! Zero-run offset encoding of the sparse hidden state (Section III-B).
//!
//! After Eq. 3, "the obtained results are then passed to an encoder that
//! keeps track of zero-valued elements using a counter. More precisely,
//! the encoder counts up if the current input value of all the batches is
//! zero. Afterwards, the obtained offset is stored along with the hidden
//! state vector into the off-chip memory. During the recurrent
//! computations of the next time step, the offset is only used to read
//! the weights that correspond to the non-zero values. Therefore, no
//! decoder is required in this scheme."
//!
//! [`OffsetEncoder`] implements exactly that: each *stored column* carries
//! the count of all-lane-zero columns skipped since the previous stored
//! column plus the `B` quantized lane values. A fixed offset width is a
//! hardware reality, so runs longer than the field can express force an
//! all-zero *anchor column* to be stored (tested, and accounted for in the
//! accelerator's traffic model).

use serde::{Deserialize, Serialize};
use zskip_tensor::Matrix;

/// One stored (non-skipped) column of the encoded state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedColumn {
    /// Number of all-zero columns skipped since the previous stored column.
    pub offset: u16,
    /// Absolute column index in the dense state (derived, for convenience).
    pub index: usize,
    /// Quantized lane values at this column (length = batch size). An
    /// anchor column stores all zeros.
    pub values: Vec<i8>,
}

impl EncodedColumn {
    /// `true` if this column exists only to keep the offset field in range.
    pub fn is_anchor(&self) -> bool {
        self.values.iter().all(|v| *v == 0)
    }
}

/// An encoded sparse state vector (batch-aligned).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedState {
    lanes: usize,
    dh: usize,
    offset_bits: u8,
    columns: Vec<EncodedColumn>,
}

impl EncodedState {
    /// Number of batch lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dense state length `dh`.
    pub fn dense_len(&self) -> usize {
        self.dh
    }

    /// Offset field width in bits.
    pub fn offset_bits(&self) -> u8 {
        self.offset_bits
    }

    /// The stored columns in order.
    pub fn columns(&self) -> &[EncodedColumn] {
        &self.columns
    }

    /// Number of stored columns (including anchors) — each one costs a
    /// full weight fetch of `4·dh` weights on the accelerator.
    pub fn stored_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of anchor columns forced by offset-field saturation.
    pub fn anchor_columns(&self) -> usize {
        self.columns.iter().filter(|c| c.is_anchor()).count()
    }

    /// Number of skipped columns.
    pub fn skipped_columns(&self) -> usize {
        self.dh - self.columns.len()
    }

    /// Encoded size in bits: per stored column, one offset field plus `B`
    /// 8-bit values.
    pub fn size_bits(&self) -> usize {
        self.columns.len() * (self.offset_bits as usize + 8 * self.lanes)
    }

    /// Dense size in bits for comparison.
    pub fn dense_size_bits(&self) -> usize {
        self.dh * 8 * self.lanes
    }

    /// Decodes back to the dense `B × dh` code matrix.
    pub fn decode(&self) -> Vec<Vec<i8>> {
        let mut out = vec![vec![0i8; self.dh]; self.lanes];
        for col in &self.columns {
            for (lane, v) in col.values.iter().enumerate() {
                out[lane][col.index] = *v;
            }
        }
        out
    }
}

/// Encoder configured with a fixed offset field width.
///
/// # Example
///
/// ```
/// use zskip_core::OffsetEncoder;
///
/// let enc = OffsetEncoder::new(4);
/// let lanes: Vec<Vec<i8>> = vec![vec![0, 0, 5, 0, 0, 0, -3, 0]];
/// let state = enc.encode(&lanes);
/// assert_eq!(state.stored_columns(), 2);
/// assert_eq!(state.skipped_columns(), 6);
/// assert_eq!(state.decode(), lanes);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffsetEncoder {
    offset_bits: u8,
}

impl OffsetEncoder {
    /// Creates an encoder whose offset field is `offset_bits` wide
    /// (max run = `2^offset_bits - 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= offset_bits <= 16`.
    pub fn new(offset_bits: u8) -> Self {
        assert!(
            (1..=16).contains(&offset_bits),
            "offset width must be 1..=16 bits"
        );
        Self { offset_bits }
    }

    /// The default 8-bit offset used by the accelerator model.
    pub fn hardware_default() -> Self {
        Self::new(8)
    }

    /// Maximum expressible zero run.
    pub fn max_run(&self) -> u16 {
        ((1u32 << self.offset_bits) - 1) as u16
    }

    /// Encodes a batch of quantized state lanes (each `dh` long).
    ///
    /// # Panics
    ///
    /// Panics if lanes are empty or lengths differ.
    pub fn encode(&self, lanes: &[Vec<i8>]) -> EncodedState {
        assert!(!lanes.is_empty(), "need at least one lane");
        let dh = lanes[0].len();
        assert!(
            lanes.iter().all(|l| l.len() == dh),
            "all lanes must have equal length"
        );
        let max_run = self.max_run();
        let mut columns = Vec::new();
        let mut run: u16 = 0;
        for j in 0..dh {
            let all_zero = lanes.iter().all(|l| l[j] == 0);
            if all_zero && run < max_run {
                run += 1;
                continue;
            }
            // Stored column: either a real non-zero column, or an anchor
            // forced by offset saturation (all_zero && run == max_run).
            columns.push(EncodedColumn {
                offset: run,
                index: j,
                values: lanes.iter().map(|l| l[j]).collect(),
            });
            run = 0;
        }
        EncodedState {
            lanes: lanes.len(),
            dh,
            offset_bits: self.offset_bits,
            columns,
        }
    }

    /// Encodes a real-valued `B × dh` state matrix through a quantizer.
    pub fn encode_f32(&self, states: &Matrix, quantizer: zskip_tensor::Quantizer) -> EncodedState {
        let lanes: Vec<Vec<i8>> = (0..states.rows())
            .map(|r| quantizer.quantize_slice(states.row(r)))
            .collect();
        self.encode(&lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_pattern() {
        let enc = OffsetEncoder::new(8);
        let lanes = vec![vec![0, 1, 0, 0, 2, 0, 0, 0, 3, 0]];
        let state = enc.encode(&lanes);
        assert_eq!(state.decode(), lanes);
    }

    #[test]
    fn batch_column_stored_if_any_lane_nonzero() {
        let enc = OffsetEncoder::new(8);
        let lanes = vec![vec![0, 0, 7, 0], vec![0, 4, 0, 0]];
        let state = enc.encode(&lanes);
        // Columns 1 and 2 each have one non-zero lane → both stored.
        assert_eq!(state.stored_columns(), 2);
        assert_eq!(state.decode(), lanes);
    }

    #[test]
    fn offsets_count_skipped_columns() {
        let enc = OffsetEncoder::new(8);
        let lanes = vec![vec![0, 0, 0, 9, 0, 8]];
        let state = enc.encode(&lanes);
        assert_eq!(state.columns()[0].offset, 3);
        assert_eq!(state.columns()[0].index, 3);
        assert_eq!(state.columns()[1].offset, 1);
    }

    #[test]
    fn saturated_offset_forces_anchor() {
        let enc = OffsetEncoder::new(2); // max run 3
        let mut lane = vec![0i8; 9];
        lane[8] = 5;
        let state = enc.encode(std::slice::from_ref(&lane));
        // Runs: 3 zeros → anchor at col 3, 3 zeros → anchor at col 7,
        // then offset 1 before the value at col 8.
        assert_eq!(state.anchor_columns(), 2);
        assert_eq!(state.decode(), vec![lane]);
    }

    #[test]
    fn all_zero_state_needs_only_anchors() {
        let enc = OffsetEncoder::new(4); // max run 15
        let lane = vec![0i8; 64];
        let state = enc.encode(std::slice::from_ref(&lane));
        assert_eq!(state.stored_columns(), state.anchor_columns());
        assert_eq!(state.stored_columns(), 64 / 16);
        assert_eq!(state.decode(), vec![lane]);
    }

    #[test]
    fn dense_state_stores_every_column() {
        let enc = OffsetEncoder::new(8);
        let lane: Vec<i8> = (1..=32).map(|v| v as i8).collect();
        let state = enc.encode(std::slice::from_ref(&lane));
        assert_eq!(state.stored_columns(), 32);
        assert_eq!(state.skipped_columns(), 0);
        assert!(state.size_bits() > state.dense_size_bits());
    }

    #[test]
    fn sparse_state_compresses() {
        let enc = OffsetEncoder::new(8);
        let mut lane = vec![0i8; 1000];
        for i in (0..1000).step_by(50) {
            lane[i] = 1;
        }
        let state = enc.encode(&[lane]);
        assert!(state.size_bits() < state.dense_size_bits() / 10);
    }

    #[test]
    fn encode_f32_quantizes_then_encodes() {
        let enc = OffsetEncoder::new(8);
        let states = Matrix::from_rows(&[&[0.0, 0.5, 0.0, -1.0]]);
        let q = zskip_tensor::Quantizer::from_max_abs(1.0);
        let state = enc.encode_f32(&states, q);
        assert_eq!(state.stored_columns(), 2);
        let decoded = state.decode();
        assert_eq!(decoded[0][1], 64); // 0.5 / (1/127) ≈ 63.5 → 64
        assert_eq!(decoded[0][3], -127);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_lanes() {
        let enc = OffsetEncoder::new(8);
        let _ = enc.encode(&[vec![0, 1], vec![0]]);
    }
}
