//! Property-based tests for pruning, sparsity and the offset encoder.

use proptest::prelude::*;
use zskip_core::sparsity::{joint_sparsity, joint_zero_columns, sparsity_degree};
use zskip_core::{MaskedGradientPruner, OffsetEncoder, StatePruner};
use zskip_nn::StateTransform;
use zskip_tensor::Matrix;

fn state_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn sparse_lanes() -> impl Strategy<Value = Vec<Vec<i8>>> {
    (1usize..=4, 1usize..=96).prop_flat_map(|(lanes, dh)| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![4 => Just(0i8), 1 => any::<i8>()], dh),
            lanes,
        )
    })
}

proptest! {
    #[test]
    fn prune_output_is_zero_or_at_threshold(
        m in state_matrix(6, 32),
        threshold in 0.0f32..1.5,
    ) {
        let pruner = StatePruner::new(threshold);
        let out = pruner.apply(&m);
        for v in out.as_slice() {
            prop_assert!(*v == 0.0 || v.abs() >= threshold,
                "value {v} violates Eq. 5 with T={threshold}");
        }
    }

    #[test]
    fn prune_is_idempotent(
        m in state_matrix(6, 32),
        threshold in 0.0f32..1.5,
    ) {
        let pruner = StatePruner::new(threshold);
        let once = pruner.apply(&m);
        prop_assert_eq!(pruner.apply(&once), once);
    }

    #[test]
    fn prune_sparsity_is_monotone_in_threshold(
        m in state_matrix(6, 32),
        t1 in 0.0f32..0.7,
        dt in 0.0f32..0.7,
    ) {
        let a = StatePruner::new(t1).apply(&m).sparsity();
        let b = StatePruner::new(t1 + dt).apply(&m).sparsity();
        prop_assert!(b >= a);
    }

    #[test]
    fn ste_and_masked_gradients_agree_on_survivors(
        m in state_matrix(4, 16),
        threshold in 0.0f32..1.0,
    ) {
        let grad = Matrix::from_fn(m.rows(), m.cols(), |r, c| ((r * 7 + c) as f32).sin());
        let ste = StatePruner::new(threshold).backward(&m, &grad);
        let masked = MaskedGradientPruner::new(threshold).backward(&m, &grad);
        for i in 0..m.len() {
            let h = m.as_slice()[i];
            if h.abs() >= threshold {
                prop_assert_eq!(ste.as_slice()[i], masked.as_slice()[i]);
            } else {
                prop_assert_eq!(masked.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn joint_sparsity_never_exceeds_elementwise(m in state_matrix(8, 48)) {
        prop_assert!(joint_sparsity(&m) <= sparsity_degree(&m) + 1e-12);
    }

    #[test]
    fn joint_zero_columns_match_joint_sparsity(m in state_matrix(8, 48)) {
        let cols = joint_zero_columns(&m);
        let frac = cols.iter().filter(|b| **b).count() as f64 / cols.len() as f64;
        prop_assert!((frac - joint_sparsity(&m)).abs() < 1e-12);
    }

    #[test]
    fn encoder_round_trips_any_lanes(
        lanes in sparse_lanes(),
        bits in 1u8..=16,
    ) {
        let enc = OffsetEncoder::new(bits);
        let state = enc.encode(&lanes);
        prop_assert_eq!(state.decode(), lanes);
    }

    #[test]
    fn encoder_accounting_is_consistent(
        lanes in sparse_lanes(),
        bits in 2u8..=10,
    ) {
        let enc = OffsetEncoder::new(bits);
        let state = enc.encode(&lanes);
        let dh = lanes[0].len();
        prop_assert_eq!(state.stored_columns() + state.skipped_columns(), dh);
        // Every truly non-zero column must be stored.
        let nonzero = (0..dh)
            .filter(|j| lanes.iter().any(|l| l[*j] != 0))
            .count();
        prop_assert!(state.stored_columns() >= nonzero);
        prop_assert_eq!(state.stored_columns() - nonzero, state.anchor_columns());
    }

    #[test]
    fn encoder_offsets_fit_field_width(
        lanes in sparse_lanes(),
        bits in 1u8..=8,
    ) {
        let enc = OffsetEncoder::new(bits);
        let state = enc.encode(&lanes);
        let max = enc.max_run();
        for col in state.columns() {
            prop_assert!(col.offset <= max);
        }
    }

    #[test]
    fn pruned_then_quantized_state_encodes_smaller_with_higher_threshold(
        m in state_matrix(1, 200),
    ) {
        let q = zskip_tensor::Quantizer::from_max_abs(2.0);
        let enc = OffsetEncoder::hardware_default();
        let small = enc.encode_f32(&StatePruner::new(0.1).apply(&m), q);
        let large = enc.encode_f32(&StatePruner::new(0.9).apply(&m), q);
        prop_assert!(large.stored_columns() <= small.stored_columns());
    }
}
