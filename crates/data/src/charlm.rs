//! Synthetic character-level corpus (PTB-char stand-in).
//!
//! Penn Treebank's character stream has a 50-symbol vocabulary and strong
//! local structure (letter bigrams/trigrams, word boundaries). This
//! generator reproduces those properties with a seeded order-2 Markov
//! process over a 50-symbol alphabet:
//!
//! * a latent "lexicon" of word shapes gives realistic word-length
//!   statistics,
//! * a sparse random transition tensor gives each symbol pair a small set
//!   of plausible successors (so a competent LSTM reaches a BPC well below
//!   the uniform `log2(50) ≈ 5.64` bits),
//! * the train/valid/test split follows the paper's 5017k/393k/442k
//!   ratios, scaled to the requested total size.

use zskip_tensor::SeedableStream;

/// Vocabulary size of the synthetic character corpus — matches PTB-char.
pub const CHAR_VOCAB: usize = 50;

/// Paper split ratios (train, valid, test) for PTB-char.
const SPLIT: (f64, f64, f64) = (5017.0, 393.0, 442.0);

/// A generated character corpus with train/valid/test splits.
///
/// # Example
///
/// ```
/// use zskip_data::CharCorpus;
///
/// let corpus = CharCorpus::generate(10_000, 42);
/// assert_eq!(corpus.vocab_size(), 50);
/// assert!(corpus.train().len() > corpus.valid().len());
/// ```
#[derive(Clone, Debug)]
pub struct CharCorpus {
    train: Vec<u8>,
    valid: Vec<u8>,
    test: Vec<u8>,
}

impl CharCorpus {
    /// Generates a corpus totalling about `total_chars` symbols, split by
    /// the paper's ratios, from the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `total_chars < 100`.
    pub fn generate(total_chars: usize, seed: u64) -> Self {
        assert!(total_chars >= 100, "corpus too small to split");
        let mut rng = SeedableStream::new(seed);
        let model = MarkovModel::new(&mut rng);
        let total_ratio = SPLIT.0 + SPLIT.1 + SPLIT.2;
        let n_train = (total_chars as f64 * SPLIT.0 / total_ratio) as usize;
        let n_valid = (total_chars as f64 * SPLIT.1 / total_ratio) as usize;
        let n_test = total_chars - n_train - n_valid;
        Self {
            train: model.sample(n_train, &mut rng),
            valid: model.sample(n_valid, &mut rng),
            test: model.sample(n_test, &mut rng),
        }
    }

    /// Vocabulary size (always [`CHAR_VOCAB`]).
    pub fn vocab_size(&self) -> usize {
        CHAR_VOCAB
    }

    /// Training split.
    pub fn train(&self) -> &[u8] {
        &self.train
    }

    /// Validation split.
    pub fn valid(&self) -> &[u8] {
        &self.valid
    }

    /// Test split.
    pub fn test(&self) -> &[u8] {
        &self.test
    }
}

/// Seeded order-2 Markov model over the 50-symbol alphabet.
///
/// Symbol 0 is the word separator ("space"). Symbols 1..=40 are "letters";
/// 41..50 are rarer "punctuation" marks that mostly follow word boundaries.
#[derive(Clone, Debug)]
struct MarkovModel {
    /// For each (prev2, prev1) context, a small successor table
    /// (symbol, weight).
    successors: Vec<Vec<(u8, f64)>>,
}

const SEPARATOR: u8 = 0;
const LETTERS: std::ops::Range<u8> = 1..41;

impl MarkovModel {
    fn new(rng: &mut SeedableStream) -> Self {
        let n = CHAR_VOCAB;
        let mut successors = Vec::with_capacity(n * n);
        for ctx in 0..(n * n) {
            let prev1 = (ctx % n) as u8;
            let mut table: Vec<(u8, f64)> = Vec::new();
            if prev1 == SEPARATOR {
                // Word start: letters, weighted by a seeded preference.
                for _ in 0..8 {
                    let s = LETTERS.start + rng.index((LETTERS.end - LETTERS.start) as usize) as u8;
                    table.push((s, 1.0 + rng.uniform(0.0, 4.0) as f64));
                }
            } else {
                // In-word: a handful of likely next letters...
                for _ in 0..5 {
                    let s = LETTERS.start + rng.index((LETTERS.end - LETTERS.start) as usize) as u8;
                    table.push((s, 1.0 + rng.uniform(0.0, 6.0) as f64));
                }
                // ...plus ending the word (space) or punctuation.
                table.push((SEPARATOR, 3.0 + rng.uniform(0.0, 3.0) as f64));
                let punct = 41 + rng.index(n - 41) as u8;
                table.push((punct, 0.2));
            }
            successors.push(table);
        }
        Self { successors }
    }

    fn sample(&self, len: usize, rng: &mut SeedableStream) -> Vec<u8> {
        let n = CHAR_VOCAB;
        let mut out = Vec::with_capacity(len);
        let (mut p2, mut p1) = (SEPARATOR as usize, SEPARATOR as usize);
        for _ in 0..len {
            let table = &self.successors[p2 * n + p1];
            let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
            let pick = table[rng.weighted_index(&weights)].0;
            out.push(pick);
            p2 = p1;
            p1 = pick as usize;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_follow_paper_ratios() {
        let c = CharCorpus::generate(58_520, 1); // 10x down-scaled PTB
        let total = (c.train().len() + c.valid().len() + c.test().len()) as f64;
        assert!((c.train().len() as f64 / total - 0.857).abs() < 0.01);
        assert!((c.valid().len() as f64 / total - 0.067).abs() < 0.01);
    }

    #[test]
    fn symbols_stay_in_vocabulary() {
        let c = CharCorpus::generate(5_000, 2);
        assert!(c.train().iter().all(|s| (*s as usize) < CHAR_VOCAB));
        assert!(c.test().iter().all(|s| (*s as usize) < CHAR_VOCAB));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CharCorpus::generate(2_000, 7);
        let b = CharCorpus::generate(2_000, 7);
        assert_eq!(a.train(), b.train());
        let c = CharCorpus::generate(2_000, 8);
        assert_ne!(a.train(), c.train());
    }

    #[test]
    fn stream_has_word_structure() {
        let c = CharCorpus::generate(20_000, 3);
        let spaces = c.train().iter().filter(|s| **s == SEPARATOR).count();
        let frac = spaces as f64 / c.train().len() as f64;
        // Word separators should be common but not dominant.
        assert!(frac > 0.05 && frac < 0.5, "separator fraction {frac}");
    }

    #[test]
    fn stream_is_compressible_below_uniform() {
        // Order-2 empirical conditional entropy (the structure the model
        // actually generates) must be well below log2(50) ≈ 5.64 bits: the
        // corpus must have learnable structure, like PTB-char (~1.5 BPC).
        let c = CharCorpus::generate(100_000, 4);
        let _n = CHAR_VOCAB;
        let mut joint = std::collections::HashMap::<(u8, u8, u8), f64>::new();
        let mut context = std::collections::HashMap::<(u8, u8), f64>::new();
        let t = c.train();
        for w in t.windows(3) {
            *joint.entry((w[0], w[1], w[2])).or_default() += 1.0;
            *context.entry((w[0], w[1])).or_default() += 1.0;
        }
        let total = (t.len() - 2) as f64;
        let mut h = 0.0f64;
        for ((a, b, _), j) in &joint {
            let ctx = context[&(*a, *b)];
            h -= (j / total) * (j / ctx).log2();
        }
        assert!(h < 4.0, "conditional entropy too high: {h}");
        assert!(h > 1.0, "suspiciously deterministic: {h}");
    }
}
