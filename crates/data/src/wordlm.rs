//! Synthetic word-level corpus (PTB-word stand-in).
//!
//! PTB-word has a 10k vocabulary with a heavy-tailed (Zipfian) unigram
//! distribution and strong bigram structure. The generator reproduces
//! both: unigram probabilities follow `p(r) ∝ 1/(r+2)` over rank `r`, and
//! each word carries a seeded successor set that receives most of the
//! transition mass. The split follows the paper's 929k/73k/82k ratios
//! scaled to the requested size.

use zskip_tensor::SeedableStream;

/// Default vocabulary size — matches PTB-word's 10k.
pub const WORD_VOCAB: usize = 10_000;

/// Paper split ratios (train, valid, test) for PTB-word.
const SPLIT: (f64, f64, f64) = (929.0, 73.0, 82.0);

/// A generated word-id corpus with train/valid/test splits.
///
/// # Example
///
/// ```
/// use zskip_data::WordCorpus;
///
/// let corpus = WordCorpus::generate(1_000, 20_000, 42);
/// assert_eq!(corpus.vocab_size(), 1_000);
/// assert!(!corpus.train().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct WordCorpus {
    vocab: usize,
    train: Vec<u32>,
    valid: Vec<u32>,
    test: Vec<u32>,
}

impl WordCorpus {
    /// Generates a corpus of about `total_tokens` tokens over a `vocab`-word
    /// vocabulary from the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 10` or `total_tokens < 100`.
    pub fn generate(vocab: usize, total_tokens: usize, seed: u64) -> Self {
        assert!(vocab >= 10, "vocabulary too small");
        assert!(total_tokens >= 100, "corpus too small to split");
        let mut rng = SeedableStream::new(seed);
        let model = BigramModel::new(vocab, &mut rng);
        let total_ratio = SPLIT.0 + SPLIT.1 + SPLIT.2;
        let n_train = (total_tokens as f64 * SPLIT.0 / total_ratio) as usize;
        let n_valid = (total_tokens as f64 * SPLIT.1 / total_ratio) as usize;
        let n_test = total_tokens - n_train - n_valid;
        Self {
            vocab,
            train: model.sample(n_train, &mut rng),
            valid: model.sample(n_valid, &mut rng),
            test: model.sample(n_test, &mut rng),
        }
    }

    /// Generates the paper-scale configuration: 10k vocabulary.
    pub fn generate_paper_vocab(total_tokens: usize, seed: u64) -> Self {
        Self::generate(WORD_VOCAB, total_tokens, seed)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Training split.
    pub fn train(&self) -> &[u32] {
        &self.train
    }

    /// Validation split.
    pub fn valid(&self) -> &[u32] {
        &self.valid
    }

    /// Test split.
    pub fn test(&self) -> &[u32] {
        &self.test
    }
}

/// Zipf unigram + sparse bigram language model.
#[derive(Clone, Debug)]
struct BigramModel {
    vocab: usize,
    /// Cumulative Zipf distribution for O(log n) sampling.
    zipf_cdf: Vec<f64>,
    /// Per-word successor sets (size `SUCCESSORS`).
    successors: Vec<Vec<u32>>,
}

/// Successor-set size per word.
const SUCCESSORS: usize = 16;
/// Probability that the next word comes from the successor set.
const BIGRAM_MASS: f64 = 0.75;

impl BigramModel {
    fn new(vocab: usize, rng: &mut SeedableStream) -> Self {
        let mut cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for r in 0..vocab {
            acc += 1.0 / (r as f64 + 2.0);
            cdf.push(acc);
        }
        let successors = (0..vocab)
            .map(|_| {
                (0..SUCCESSORS)
                    .map(|_| Self::sample_zipf_raw(&cdf, rng) as u32)
                    .collect()
            })
            .collect();
        Self {
            vocab,
            zipf_cdf: cdf,
            successors,
        }
    }

    fn sample_zipf_raw(cdf: &[f64], rng: &mut SeedableStream) -> usize {
        let total = *cdf.last().expect("non-empty cdf");
        let draw = rng.uniform(0.0, total as f32) as f64;
        match cdf.binary_search_by(|c| c.partial_cmp(&draw).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        }
    }

    fn sample(&self, len: usize, rng: &mut SeedableStream) -> Vec<u32> {
        let mut out = Vec::with_capacity(len);
        let mut prev = Self::sample_zipf_raw(&self.zipf_cdf, rng) as u32;
        for _ in 0..len {
            let next = if rng.coin(BIGRAM_MASS) {
                let set = &self.successors[prev as usize];
                set[rng.index(set.len())]
            } else {
                Self::sample_zipf_raw(&self.zipf_cdf, rng) as u32
            };
            out.push(next);
            prev = next;
        }
        debug_assert!(out.iter().all(|w| (*w as usize) < self.vocab));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_stay_in_vocabulary() {
        let c = WordCorpus::generate(500, 5_000, 1);
        assert!(c.train().iter().all(|w| (*w as usize) < 500));
    }

    #[test]
    fn split_ratios_match_paper() {
        let c = WordCorpus::generate(200, 10_840, 2); // 100x down-scaled PTB
        let total = (c.train().len() + c.valid().len() + c.test().len()) as f64;
        assert!((c.train().len() as f64 / total - 0.857).abs() < 0.01);
    }

    #[test]
    fn unigram_law_is_heavy_tailed() {
        let c = WordCorpus::generate(1_000, 50_000, 3);
        let mut counts = vec![0usize; 1_000];
        for w in c.train() {
            counts[*w as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of types should cover the majority of tokens.
        let head: usize = counts[..100].iter().sum();
        let frac = head as f64 / c.train().len() as f64;
        assert!(frac > 0.5, "head mass {frac}");
    }

    #[test]
    fn bigram_structure_is_present() {
        // The empirical probability that consecutive tokens repeat a
        // context-specific successor should be far above the unigram rate.
        let c = WordCorpus::generate(200, 30_000, 4);
        let t = c.train();
        let mut seen = std::collections::HashMap::<(u32, u32), usize>::new();
        for w in t.windows(2) {
            *seen.entry((w[0], w[1])).or_default() += 1;
        }
        // Count distinct bigram types: with strong structure it is much
        // smaller than the number of tokens.
        let distinct = seen.len() as f64;
        assert!(distinct < t.len() as f64 * 0.8, "distinct {distinct}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WordCorpus::generate(300, 2_000, 9);
        let b = WordCorpus::generate(300, 2_000, 9);
        assert_eq!(a.train(), b.train());
    }
}
