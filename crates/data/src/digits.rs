//! Stroke-rendered digit images (sequential-MNIST stand-in).
//!
//! Each digit class 0–9 is defined by a polyline/arc template in the unit
//! square; rendering applies a random affine jitter (rotation, scale,
//! translation), stamps the strokes with a soft Gaussian pen, and adds
//! light pixel noise. Images are 28×28 like MNIST and are consumed in
//! scan-line order, one pixel per LSTM timestep, exactly as in the paper's
//! Section II-B3 / Le et al. \[15\].

use zskip_tensor::SeedableStream;

/// Image side length (MNIST-compatible).
pub const SIDE: usize = 28;

/// Number of digit classes.
pub const CLASSES: usize = 10;

/// One grayscale digit image with its label.
#[derive(Clone, Debug)]
pub struct DigitImage {
    side: usize,
    pixels: Vec<f32>,
    label: u8,
}

impl DigitImage {
    /// Image side length in pixels.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Class label (0–9).
    pub fn label(&self) -> u8 {
        self.label
    }

    /// Pixel intensities in `[0, 1]`, row-major.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// The scan-line pixel sequence (row-major flattening) — the LSTM
    /// input order.
    pub fn to_sequence(&self) -> Vec<f32> {
        self.pixels.clone()
    }

    /// Average-pools the image by `factor`, shortening the sequence by
    /// `factor²` (useful for fast tests: 28→14 or 28→7).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` divides the side length.
    pub fn downsample(&self, factor: usize) -> DigitImage {
        assert!(
            factor > 0 && self.side.is_multiple_of(factor),
            "bad downsample factor"
        );
        let new_side = self.side / factor;
        let mut pixels = vec![0.0f32; new_side * new_side];
        let inv = 1.0 / (factor * factor) as f32;
        for r in 0..new_side {
            for c in 0..new_side {
                let mut acc = 0.0;
                for dr in 0..factor {
                    for dc in 0..factor {
                        acc += self.pixels[(r * factor + dr) * self.side + (c * factor + dc)];
                    }
                }
                pixels[r * new_side + c] = acc * inv;
            }
        }
        DigitImage {
            side: new_side,
            pixels,
            label: self.label,
        }
    }

    /// Fraction of pixels above an ink threshold — sanity metric.
    pub fn ink_fraction(&self, threshold: f32) -> f64 {
        let n = self.pixels.iter().filter(|p| **p > threshold).count();
        n as f64 / self.pixels.len() as f64
    }
}

/// A labeled set of rendered digits.
///
/// # Example
///
/// ```
/// use zskip_data::DigitSet;
///
/// let set = DigitSet::generate(20, 42);
/// assert_eq!(set.len(), 20);
/// let (pixels, labels) = set.batch_sequences(0..4, 1);
/// assert_eq!(pixels.len(), 28 * 28); // T steps
/// assert_eq!(labels.len(), 4);       // B lanes
/// ```
#[derive(Clone, Debug)]
pub struct DigitSet {
    images: Vec<DigitImage>,
}

impl DigitSet {
    /// Renders `n` digits with balanced classes from the given seed.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = SeedableStream::new(seed);
        let images = (0..n)
            .map(|i| render_digit((i % CLASSES) as u8, &mut rng))
            .collect();
        Self { images }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Borrow image `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> &DigitImage {
        &self.images[i]
    }

    /// Iterates over the images.
    pub fn iter(&self) -> std::slice::Iter<'_, DigitImage> {
        self.images.iter()
    }

    /// Builds a time-major *row* batch from an index range: step `t`
    /// carries the whole `t`-th image row for each lane, giving `side`
    /// steps of `side`-wide inputs (after `downsample`). Rows come out as
    /// flat `row-major lane × width` vectors, one per step, for
    /// `zskip_nn::models::SeqClassifier::train_batch_xs`-style consumers.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn batch_rows(
        &self,
        range: std::ops::Range<usize>,
        downsample: usize,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        assert!(
            !range.is_empty() && range.end <= self.images.len(),
            "bad range"
        );
        let selected: Vec<DigitImage> = range
            .clone()
            .map(|i| {
                if downsample > 1 {
                    self.images[i].downsample(downsample)
                } else {
                    self.images[i].clone()
                }
            })
            .collect();
        let side = selected[0].side;
        let rows = (0..side)
            .map(|r| {
                let mut step = Vec::with_capacity(selected.len() * side);
                for img in &selected {
                    step.extend_from_slice(&img.pixels[r * side..(r + 1) * side]);
                }
                step
            })
            .collect();
        let labels = selected.iter().map(|img| img.label as usize).collect();
        (rows, labels)
    }

    /// Builds a time-major pixel batch from an index range.
    ///
    /// Returns `(pixels, labels)` with `pixels[t][lane]` the pixel at step
    /// `t` for each selected image (after `downsample`), matching the
    /// input shape of `zskip_nn::models::SeqClassifier`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn batch_sequences(
        &self,
        range: std::ops::Range<usize>,
        downsample: usize,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        assert!(
            !range.is_empty() && range.end <= self.images.len(),
            "bad range"
        );
        let selected: Vec<DigitImage> = range
            .clone()
            .map(|i| {
                if downsample > 1 {
                    self.images[i].downsample(downsample)
                } else {
                    self.images[i].clone()
                }
            })
            .collect();
        let t_len = selected[0].pixels.len();
        let pixels = (0..t_len)
            .map(|t| selected.iter().map(|img| img.pixels[t]).collect())
            .collect();
        let labels = selected.iter().map(|img| img.label as usize).collect();
        (pixels, labels)
    }
}

/// Polyline templates per class, in unit coordinates (x right, y down).
fn template(label: u8) -> Vec<Vec<(f32, f32)>> {
    let arc = |cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize| {
        (0..=n)
            .map(|i| {
                let a = a0 + (a1 - a0) * i as f32 / n as f32;
                (cx + rx * a.cos(), cy + ry * a.sin())
            })
            .collect::<Vec<_>>()
    };
    use std::f32::consts::PI;
    match label {
        0 => vec![arc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * PI, 24)],
        1 => vec![vec![(0.38, 0.28), (0.52, 0.14), (0.52, 0.86)]],
        2 => vec![{
            let mut p = arc(0.5, 0.3, 0.22, 0.18, PI, 2.0 * PI + 0.6, 14);
            p.extend([(0.3, 0.84), (0.74, 0.84)]);
            p
        }],
        3 => vec![
            arc(0.46, 0.32, 0.2, 0.17, -2.4, 1.35, 12),
            arc(0.46, 0.67, 0.22, 0.19, -1.35, 2.4, 12),
        ],
        4 => vec![
            vec![(0.6, 0.14), (0.28, 0.6), (0.78, 0.6)],
            vec![(0.62, 0.38), (0.62, 0.88)],
        ],
        5 => vec![{
            let mut p = vec![(0.7, 0.16), (0.36, 0.16), (0.33, 0.46)];
            p.extend(arc(0.48, 0.64, 0.22, 0.2, -1.2, 2.1, 12));
            p
        }],
        6 => vec![{
            let mut p = vec![(0.62, 0.12), (0.4, 0.42)];
            p.extend(arc(0.5, 0.65, 0.2, 0.2, -2.4, 3.6, 16));
            p
        }],
        7 => vec![vec![(0.26, 0.16), (0.74, 0.16), (0.44, 0.86)]],
        8 => vec![
            arc(0.5, 0.32, 0.18, 0.16, 0.0, 2.0 * PI, 16),
            arc(0.5, 0.67, 0.21, 0.18, 0.0, 2.0 * PI, 16),
        ],
        9 => vec![{
            let mut p = arc(0.52, 0.34, 0.19, 0.18, 0.0, 2.0 * PI, 16);
            p.extend([(0.7, 0.4), (0.6, 0.88)]);
            p
        }],
        _ => panic!("label {label} out of range"),
    }
}

fn render_digit(label: u8, rng: &mut SeedableStream) -> DigitImage {
    let side = SIDE;
    let mut pixels = vec![0.0f32; side * side];

    // Random affine jitter.
    let theta = rng.uniform(-0.16, 0.16);
    let scale = rng.uniform(0.85, 1.1);
    let (dx, dy) = (rng.uniform(-0.07, 0.07), rng.uniform(-0.07, 0.07));
    let (sin_t, cos_t) = theta.sin_cos();
    let jitter = |(x, y): (f32, f32)| {
        let (cx, cy) = (x - 0.5, y - 0.5);
        let xr = scale * (cx * cos_t - cy * sin_t) + 0.5 + dx;
        let yr = scale * (cx * sin_t + cy * cos_t) + 0.5 + dy;
        (xr, yr)
    };

    let pen_radius = rng.uniform(0.55, 0.95); // in pixels
    for stroke in template(label) {
        let pts: Vec<(f32, f32)> = stroke.into_iter().map(jitter).collect();
        for seg in pts.windows(2) {
            stamp_segment(&mut pixels, side, seg[0], seg[1], pen_radius);
        }
    }

    // Light sensor noise.
    for p in &mut pixels {
        *p = (*p + rng.uniform(0.0, 0.03)).clamp(0.0, 1.0);
    }

    DigitImage {
        side,
        pixels,
        label,
    }
}

/// Stamps a soft-edged line segment into the canvas.
fn stamp_segment(pixels: &mut [f32], side: usize, a: (f32, f32), b: (f32, f32), radius: f32) {
    let (ax, ay) = (a.0 * side as f32, a.1 * side as f32);
    let (bx, by) = (b.0 * side as f32, b.1 * side as f32);
    let len = ((bx - ax).powi(2) + (by - ay).powi(2)).sqrt();
    let steps = (len * 2.0).ceil().max(1.0) as usize;
    for i in 0..=steps {
        let t = i as f32 / steps as f32;
        let (px, py) = (ax + (bx - ax) * t, ay + (by - ay) * t);
        let r_int = radius.ceil() as i32 + 1;
        let (cx, cy) = (px.round() as i32, py.round() as i32);
        for gy in (cy - r_int)..=(cy + r_int) {
            for gx in (cx - r_int)..=(cx + r_int) {
                if gx < 0 || gy < 0 || gx >= side as i32 || gy >= side as i32 {
                    continue;
                }
                let d2 = (gx as f32 - px).powi(2) + (gy as f32 - py).powi(2);
                let ink = (-d2 / (radius * radius)).exp();
                let cell = &mut pixels[gy as usize * side + gx as usize];
                *cell = (*cell + ink * 0.9).min(1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_classes() {
        let set = DigitSet::generate(50, 1);
        let mut counts = [0usize; CLASSES];
        for img in set.iter() {
            counts[img.label() as usize] += 1;
        }
        assert!(counts.iter().all(|c| *c == 5), "{counts:?}");
    }

    #[test]
    fn images_have_reasonable_ink() {
        let set = DigitSet::generate(20, 2);
        for img in set.iter() {
            let ink = img.ink_fraction(0.3);
            assert!(
                ink > 0.02 && ink < 0.5,
                "class {} ink fraction {ink}",
                img.label()
            );
        }
    }

    #[test]
    fn pixels_are_normalized() {
        let set = DigitSet::generate(10, 3);
        for img in set.iter() {
            assert!(img.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn downsample_shortens_sequence() {
        let set = DigitSet::generate(1, 4);
        let img = set.image(0);
        let small = img.downsample(4);
        assert_eq!(small.side(), 7);
        assert_eq!(small.to_sequence().len(), 49);
    }

    #[test]
    fn batch_rows_shapes_and_content() {
        let set = DigitSet::generate(6, 7);
        let (rows, labels) = set.batch_rows(1..4, 2);
        assert_eq!(rows.len(), 14); // 14 row-steps after 2x downsample
        assert_eq!(rows[0].len(), 3 * 14); // 3 lanes × 14-wide rows
        assert_eq!(labels, vec![1, 2, 3]);
        // Row r of lane 0 must equal the downsampled image's row r.
        let img = set.image(1).downsample(2);
        assert_eq!(&rows[3][0..14], &img.pixels()[3 * 14..4 * 14]);
    }

    #[test]
    fn batch_sequences_is_time_major() {
        let set = DigitSet::generate(8, 5);
        let (pixels, labels) = set.batch_sequences(2..6, 2);
        assert_eq!(pixels.len(), 14 * 14);
        assert_eq!(pixels[0].len(), 4);
        assert_eq!(labels, vec![2, 3, 4, 5]);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Average intra-class pixel distance should be lower than
        // inter-class distance: the renderer must produce class structure.
        let set = DigitSet::generate(100, 6);
        let dist = |a: &DigitImage, b: &DigitImage| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..30 {
            for j in (i + 1)..30 {
                let d = dist(set.image(i), set.image(j));
                if set.image(i).label() == set.image(j).label() {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f32;
        let inter_mean = inter.0 / inter.1 as f32;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} !< inter {inter_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DigitSet::generate(5, 9);
        let b = DigitSet::generate(5, 9);
        assert_eq!(a.image(3).pixels(), b.image(3).pixels());
    }
}
