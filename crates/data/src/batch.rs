//! Contiguous BPTT batching for stateful language-model training.
//!
//! The stream is split into `B` contiguous lanes; each window advances all
//! lanes by `T` tokens, and the model's recurrent state is carried across
//! consecutive windows — the standard Penn Treebank training recipe the
//! paper follows (sequence length 100 for char, 35 for word).

/// One BPTT window: time-major inputs and next-token targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BpttWindow {
    /// `inputs[t][lane]` — token fed at step `t`.
    pub inputs: Vec<Vec<usize>>,
    /// `targets[t][lane]` — token to predict at step `t`.
    pub targets: Vec<Vec<usize>>,
}

impl BpttWindow {
    /// Window length in steps.
    pub fn steps(&self) -> usize {
        self.inputs.len()
    }

    /// Number of batch lanes.
    pub fn lanes(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }
}

/// Splits a token stream into `batch` contiguous lanes and serves
/// fixed-length BPTT windows.
///
/// # Example
///
/// ```
/// use zskip_data::BpttBatcher;
///
/// let stream: Vec<u32> = (0..100).collect();
/// let mut batcher = BpttBatcher::new(&stream, 4, 5);
/// let w = batcher.next_window().unwrap();
/// assert_eq!(w.steps(), 5);
/// assert_eq!(w.lanes(), 4);
/// // Lane 0 starts at the head of the stream; targets are shifted by one.
/// assert_eq!(w.inputs[0][0], 0);
/// assert_eq!(w.targets[0][0], 1);
/// ```
#[derive(Clone, Debug)]
pub struct BpttBatcher {
    lanes: Vec<Vec<usize>>,
    bptt: usize,
    cursor: usize,
}

impl BpttBatcher {
    /// Creates a batcher over `stream` with `batch` lanes and `bptt`-step
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if the stream is too short to give every lane `bptt + 1`
    /// tokens, or if `batch`/`bptt` is zero.
    pub fn new(stream: &[u32], batch: usize, bptt: usize) -> Self {
        assert!(batch > 0 && bptt > 0, "batch and bptt must be positive");
        let lane_len = stream.len() / batch;
        assert!(
            lane_len > bptt,
            "stream of {} tokens cannot fill {batch} lanes of {} tokens",
            stream.len(),
            bptt + 1
        );
        let lanes = (0..batch)
            .map(|b| {
                stream[b * lane_len..(b + 1) * lane_len]
                    .iter()
                    .map(|t| *t as usize)
                    .collect()
            })
            .collect();
        Self {
            lanes,
            bptt,
            cursor: 0,
        }
    }

    /// Convenience constructor for byte streams (char corpora).
    pub fn from_bytes(stream: &[u8], batch: usize, bptt: usize) -> Self {
        let widened: Vec<u32> = stream.iter().map(|b| *b as u32).collect();
        Self::new(&widened, batch, bptt)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of complete windows per epoch.
    pub fn windows_per_epoch(&self) -> usize {
        (self.lanes[0].len() - 1) / self.bptt
    }

    /// Serves the next window, or `None` at the end of the epoch.
    pub fn next_window(&mut self) -> Option<BpttWindow> {
        let end = self.cursor + self.bptt;
        if end + 1 > self.lanes[0].len() {
            return None;
        }
        let inputs = (self.cursor..end)
            .map(|t| self.lanes.iter().map(|lane| lane[t]).collect())
            .collect();
        let targets = (self.cursor..end)
            .map(|t| self.lanes.iter().map(|lane| lane[t + 1]).collect())
            .collect();
        self.cursor = end;
        Some(BpttWindow { inputs, targets })
    }

    /// Rewinds to the start of the epoch (recurrent state should be reset
    /// by the caller as well).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_tile_the_stream() {
        let stream: Vec<u32> = (0..64).collect();
        let mut b = BpttBatcher::new(&stream, 2, 7);
        let mut count = 0;
        while let Some(w) = b.next_window() {
            assert_eq!(w.steps(), 7);
            assert_eq!(w.lanes(), 2);
            count += 1;
        }
        assert_eq!(count, b.windows_per_epoch());
        // 64/2 = 32 tokens per lane, (32-1)/7 = 4 windows.
        assert_eq!(count, 4);
    }

    #[test]
    fn lanes_are_contiguous_slices() {
        let stream: Vec<u32> = (0..20).collect();
        let mut b = BpttBatcher::new(&stream, 2, 3);
        let w = b.next_window().expect("window");
        // Lane 1 starts at stream position 10.
        assert_eq!(w.inputs[0][1], 10);
        assert_eq!(w.inputs[1][1], 11);
        assert_eq!(w.targets[0][1], 11);
    }

    #[test]
    fn consecutive_windows_continue_where_previous_ended() {
        let stream: Vec<u32> = (0..30).collect();
        let mut b = BpttBatcher::new(&stream, 1, 4);
        let w1 = b.next_window().expect("w1");
        let w2 = b.next_window().expect("w2");
        assert_eq!(w2.inputs[0][0], w1.targets[3][0]);
    }

    #[test]
    fn reset_restarts_epoch() {
        let stream: Vec<u32> = (0..30).collect();
        let mut b = BpttBatcher::new(&stream, 1, 4);
        let first = b.next_window().expect("w");
        while b.next_window().is_some() {}
        b.reset();
        assert_eq!(b.next_window().expect("w"), first);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn rejects_too_short_stream() {
        let stream: Vec<u32> = (0..8).collect();
        let _ = BpttBatcher::new(&stream, 4, 5);
    }

    #[test]
    fn from_bytes_matches_u32_path() {
        let bytes: Vec<u8> = (0..40).collect();
        let widened: Vec<u32> = bytes.iter().map(|b| *b as u32).collect();
        let mut a = BpttBatcher::from_bytes(&bytes, 2, 5);
        let mut b = BpttBatcher::new(&widened, 2, 5);
        assert_eq!(a.next_window(), b.next_window());
    }
}
