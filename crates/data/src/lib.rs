//! Synthetic temporal datasets standing in for Penn Treebank and MNIST.
//!
//! The paper evaluates on the Penn Treebank corpus (character- and
//! word-level) and on sequential MNIST. Those artifacts are not
//! redistributable here, so this crate generates *seeded synthetic
//! equivalents* that preserve the properties the method and the
//! accelerator care about:
//!
//! * [`charlm::CharCorpus`] — a 50-symbol character stream with
//!   English-like letter statistics from a seeded order-2 Markov process
//!   (PTB-char uses a vocabulary of 50; the input stays one-hot),
//! * [`wordlm::WordCorpus`] — a 10k-vocabulary word stream with a Zipfian
//!   unigram law and sparse bigram structure (PTB-word; the input passes
//!   through a dense embedding),
//! * [`digits::DigitSet`] — 28×28 stroke-rendered digit images scanned
//!   pixel-by-pixel (sequential MNIST),
//! * [`batch`] — contiguous BPTT batching exactly as stateful LM training
//!   expects.
//!
//! Split sizes default to the paper's ratios, scaled down so experiments
//! finish on a laptop; every generator takes an explicit size so the
//! full-scale configuration remains one argument away.

pub mod batch;
pub mod charlm;
pub mod digits;
pub mod wordlm;

pub use batch::{BpttBatcher, BpttWindow};
pub use charlm::CharCorpus;
pub use digits::{DigitImage, DigitSet};
pub use wordlm::WordCorpus;
