//! Analytic models of the weight-sparse LSTM accelerators the paper
//! compares against (Section IV, Fig. 10).
//!
//! * [`EseModel`] — ESE (Han et al., FPGA'17): 32 channels of PEs on a
//!   Xilinx XCKU060 at 200 MHz exploiting *weight* sparsity; published
//!   figures: 282 GOPS on the sparse model ≙ 2.52 TOPS dense-equivalent,
//!   41 W, 61.5 GOPS/W dense-equivalent efficiency, 4.2× sparse-over-dense
//!   speedup.
//! * [`CbsrModel`] — CBSR (Park et al., DATE'18): a load-balancing sparse
//!   weight format on an ESE-like engine. The DATE'19 paper itself
//!   estimates CBSR as ESE scaled by the published 25–30% improvement;
//!   so does this model.
//! * [`Fig10Comparison`] — the headline comparison, in both the paper's
//!   as-printed form and a units-consistent form (see EXPERIMENTS.md for
//!   the discrepancy discussion).

use serde::{Deserialize, Serialize};
use zskip_accel::SimReport;

/// Analytic model of the ESE accelerator.
///
/// # Example
///
/// ```
/// use zskip_baselines::EseModel;
///
/// let ese = EseModel::published();
/// assert!((ese.effective_tops() - 2.52).abs() < 0.05);
/// assert!((ese.dense_equivalent_gops_per_watt() - 61.5).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EseModel {
    /// Parallel channels.
    pub channels: usize,
    /// PEs per channel.
    pub pes_per_channel: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Density of the pruned weight matrices (≈11.2% for ESE's LSTM).
    pub weight_density: f64,
    /// Sustained utilization on sparse work (load imbalance between rows
    /// of the compressed matrix keeps it below 1).
    pub sparse_utilization: f64,
    /// Board power in watts.
    pub power_watts: f64,
}

impl EseModel {
    /// The published FPGA'17 configuration.
    pub fn published() -> Self {
        Self {
            channels: 32,
            pes_per_channel: 32,
            clock_hz: 200e6,
            weight_density: 0.112,
            sparse_utilization: 0.688,
            power_watts: 41.0,
        }
    }

    /// Physical MAC throughput in GOPS (one MAC = two operations).
    pub fn physical_peak_gops(&self) -> f64 {
        (self.channels * self.pes_per_channel) as f64 * 2.0 * self.clock_hz / 1e9
    }

    /// Sustained GOPS on the sparse model.
    pub fn sparse_gops(&self) -> f64 {
        self.physical_peak_gops() * self.sparse_utilization
    }

    /// Dense-equivalent effective throughput in TOPS: sparse throughput
    /// divided by weight density (skipped weight work counts, matching
    /// how ESE reports 2.52 TOPS).
    pub fn effective_tops(&self) -> f64 {
        self.sparse_gops() / self.weight_density / 1e3
    }

    /// Dense-equivalent energy efficiency in GOPS/W (ESE: 61.5).
    pub fn dense_equivalent_gops_per_watt(&self) -> f64 {
        self.effective_tops() * 1e3 / self.power_watts
    }

    /// Analytic upper bound on the sparse-over-dense speedup: processing
    /// only the non-zero weights at the sustained sparse utilization,
    /// against a fully-utilized dense pass. ESE *measured* 4.2× (memory
    /// effects its analytic model does not capture) — see
    /// [`Self::MEASURED_SPARSE_SPEEDUP`].
    pub fn analytic_speedup_bound(&self) -> f64 {
        self.sparse_utilization / self.weight_density
    }

    /// The sparse-over-dense speedup ESE reports on hardware, quoted by
    /// the DATE'19 paper ("4.2× faster than the model with dense
    /// weights").
    pub const MEASURED_SPARSE_SPEEDUP: f64 = 4.2;
}

/// CBSR estimated from ESE by the published improvement factor, exactly
/// as the DATE'19 paper does ("we have used the improvement factor of
/// CBSR over ESE to estimate the performance of CBSR").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CbsrModel {
    /// The underlying ESE-like engine.
    pub base: EseModel,
    /// Performance improvement from the load-balanced format (1.25–1.30).
    pub improvement: f64,
}

impl CbsrModel {
    /// The paper's estimate: ESE × 1.30.
    pub fn published() -> Self {
        Self {
            base: EseModel::published(),
            improvement: 1.30,
        }
    }

    /// Dense-equivalent effective throughput in TOPS.
    pub fn effective_tops(&self) -> f64 {
        self.base.effective_tops() * self.improvement
    }
}

/// The Fig. 10 comparison in both interpretations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig10Comparison {
    /// Bar printed for "This work" in the paper: 4.8. The paper's text
    /// calls the same 4.8 its *peak energy efficiency in TOPS/W*, so the
    /// as-printed bar is our peak TOPS/W figure.
    pub this_work_as_printed: f64,
    /// ESE bar (effective TOPS).
    pub ese_tops: f64,
    /// CBSR bar (effective TOPS).
    pub cbsr_tops: f64,
    /// Units-consistent alternative: our peak *effective* throughput in
    /// TOPS (sparse, best batch).
    pub this_work_effective_tops: f64,
    /// Units-consistent efficiency comparison: ours vs ESE in GOPS/W.
    pub this_work_gops_per_watt: f64,
    /// ESE dense-equivalent GOPS/W.
    pub ese_gops_per_watt: f64,
}

impl Fig10Comparison {
    /// Builds the comparison from this work's best sparse run.
    pub fn from_report(best_sparse: &SimReport) -> Self {
        let ese = EseModel::published();
        let cbsr = CbsrModel::published();
        Self {
            this_work_as_printed: best_sparse.gops_per_watt / 1e3,
            ese_tops: ese.effective_tops(),
            cbsr_tops: cbsr.effective_tops(),
            this_work_effective_tops: best_sparse.effective_gops / 1e3,
            this_work_gops_per_watt: best_sparse.gops_per_watt,
            ese_gops_per_watt: ese.dense_equivalent_gops_per_watt(),
        }
    }

    /// The paper's headline ratio over ESE (1.9× for the printed bars).
    pub fn ratio_over_ese(&self) -> f64 {
        self.this_work_as_printed / self.ese_tops
    }

    /// The paper's headline ratio over CBSR (1.5×).
    pub fn ratio_over_cbsr(&self) -> f64 {
        self.this_work_as_printed / self.cbsr_tops
    }

    /// Efficiency advantage over ESE in consistent units.
    pub fn efficiency_ratio_over_ese(&self) -> f64 {
        self.this_work_gops_per_watt / self.ese_gops_per_watt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_accel::{LstmWorkload, Simulator, SkipTrace, SparsityProfile};

    #[test]
    fn ese_reproduces_published_numbers() {
        let ese = EseModel::published();
        // 32×32 PEs × 2 × 200 MHz = 409.6 GOPS physical.
        assert!((ese.physical_peak_gops() - 409.6).abs() < 0.1);
        // 282 GOPS sparse sustained.
        assert!((ese.sparse_gops() - 282.0).abs() < 2.0);
        // 2.52 TOPS dense-equivalent.
        assert!((ese.effective_tops() - 2.52).abs() < 0.05);
        // 61.5 GOPS/W.
        assert!((ese.dense_equivalent_gops_per_watt() - 61.5).abs() < 1.0);
    }

    #[test]
    fn ese_speedup_bound_exceeds_measured() {
        let ese = EseModel::published();
        // Analytic bound (no memory stalls) must bracket the measured
        // 4.2× from above but stay in its order of magnitude.
        let bound = ese.analytic_speedup_bound();
        assert!(bound >= EseModel::MEASURED_SPARSE_SPEEDUP, "bound {bound}");
        assert!(bound < 10.0, "bound {bound}");
    }

    #[test]
    fn cbsr_is_25_to_30_percent_better() {
        let cbsr = CbsrModel::published();
        let ratio = cbsr.effective_tops() / cbsr.base.effective_tops();
        assert!((1.25..=1.30).contains(&ratio));
        assert!((cbsr.effective_tops() - 3.3).abs() < 0.1);
    }

    fn best_sparse_report() -> SimReport {
        let sim = Simulator::paper();
        let w = LstmWorkload::ptb_char(8);
        let trace = SkipTrace::from_profile(
            w.dh,
            w.seq_len,
            w.batch,
            SparsityProfile::new(0.81, 0.0),
            42,
        );
        sim.run(&w, &trace)
    }

    #[test]
    fn fig10_printed_bars_match_paper() {
        let cmp = Fig10Comparison::from_report(&best_sparse_report());
        // Paper: this work 4.8, ESE 2.5, CBSR 3.3; ratios 1.9× and 1.5×.
        assert!(
            (cmp.this_work_as_printed - 4.8).abs() < 0.5,
            "this-work bar {}",
            cmp.this_work_as_printed
        );
        assert!((cmp.ese_tops - 2.5).abs() < 0.1);
        assert!((cmp.cbsr_tops - 3.3).abs() < 0.1);
        assert!((cmp.ratio_over_ese() - 1.9).abs() < 0.3);
        assert!((cmp.ratio_over_cbsr() - 1.5).abs() < 0.25);
    }

    #[test]
    fn consistent_units_show_efficiency_win_not_throughput_win() {
        let cmp = Fig10Comparison::from_report(&best_sparse_report());
        // A 1.1 mm² edge accelerator cannot out-run a 41 W FPGA board in
        // absolute TOPS...
        assert!(cmp.this_work_effective_tops < cmp.ese_tops);
        // ...but it wins energy efficiency by well over an order of
        // magnitude.
        assert!(cmp.efficiency_ratio_over_ese() > 50.0);
    }
}
