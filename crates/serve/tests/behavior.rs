//! Behavioral contracts of the serving layer: backpressure, TTL
//! eviction, deadline accounting, stale handles, stats, shutdown.

use std::time::Duration;
use zskip_runtime::{EngineError, FrozenCharLm};
use zskip_serve::{LoadConfig, LoadGenerator, ServeConfig, ServeError, Server, StreamId};

fn model() -> FrozenCharLm {
    FrozenCharLm::random(20, 16, 5)
}

#[test]
fn round_trip_and_stats() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    let mut client = server.client();
    let a = client.open().unwrap();
    let b = client.open().unwrap();
    for t in 0..5 {
        client.send(a, t).unwrap();
        client.send(b, t + 5).unwrap();
    }
    for _ in 0..5 {
        assert_eq!(client.recv(a).unwrap().logits.len(), 20);
        assert_eq!(client.recv(b).unwrap().logits.len(), 20);
    }
    let stats = server.stats();
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.submitted(), 10);
    assert_eq!(stats.delivered(), 10);
    assert_eq!(stats.open_sessions(), 2);
    assert!(stats.steps() > 0);
    // Every submitted request was dequeued (its result arrived), so the
    // depth gauge must be back to zero — and must not have underflowed.
    assert_eq!(stats.queue_depth(), 0);
    client.close(a).unwrap();
    client.close(b).unwrap();
    server.shutdown();
}

#[test]
fn results_arrive_in_submit_order() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    let tokens: Vec<usize> = (0..12).map(|t| (t * 3 + 1) % 20).collect();
    for &t in &tokens {
        client.send(s, t).unwrap();
    }
    for &t in &tokens {
        assert_eq!(client.recv(s).unwrap().input, t);
    }
    server.shutdown();
}

#[test]
fn recv_any_returns_the_next_result_from_any_stream() {
    // One driver thread owns several streams; recv_any surfaces whichever
    // stream produced a result, without the driver polling each one.
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    let mut client = server.client();
    let streams: Vec<_> = (0..3).map(|_| client.open().unwrap()).collect();

    // Only the middle stream speaks: recv_any must attribute the result
    // to it.
    client.send(streams[1], 4).unwrap();
    let (id, result) = client.recv_any(Duration::from_secs(5)).unwrap();
    assert_eq!(id, streams[1]);
    assert_eq!(result.input, 4);

    // All streams speak: three recv_any calls drain one result each, and
    // every stream is represented exactly once (the rotating cursor keeps
    // a chatty stream from shadowing the rest).
    for (i, &s) in streams.iter().enumerate() {
        client.send(s, i).unwrap();
    }
    let mut seen: Vec<StreamId> = (0..3)
        .map(|_| client.recv_any(Duration::from_secs(5)).unwrap().0)
        .collect();
    seen.sort_unstable();
    let mut expected = streams.clone();
    expected.sort_unstable();
    assert_eq!(seen, expected);
    server.shutdown();
}

#[test]
fn recv_any_times_out_and_reports_an_empty_stream_set() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    // No streams at all: nothing could ever arrive.
    assert_eq!(
        client.recv_any(Duration::from_millis(10)),
        Err(ServeError::UnknownStream)
    );
    // Streams open but silent: the timeout fires.
    let _s = client.open().unwrap();
    assert_eq!(
        client.recv_any(Duration::from_millis(30)),
        Err(ServeError::RecvTimeout)
    );
    server.shutdown();
}

#[test]
fn recv_any_drops_evicted_streams_and_keeps_waiting_on_the_rest() {
    // One stream is TTL-evicted while another still produces: recv_any
    // must forget the dead stream (like recv does) and deliver from the
    // live one.
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_session_ttl(Duration::from_millis(30)),
    );
    let mut client = server.client();
    let dead = client.open().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // `dead` expires
    let (id, live, result) = (0..50)
        .find_map(|_| {
            let live = client.open().unwrap();
            // Under scheduler starvation even this fresh stream can
            // cross the 30 ms TTL before its submit is processed, which
            // recv_any correctly reports (UnknownStream once every
            // stream is gone) — reopen and retry; the property under
            // test is that a dead member stream never wedges the wait.
            match client
                .send(live, 2)
                .and_then(|()| client.recv_any(Duration::from_secs(5)))
            {
                Ok((id, result)) => Some((id, live, result)),
                Err(ServeError::UnknownStream | ServeError::Evicted) => None,
                Err(e) => panic!("unexpected recv_any error: {e:?}"),
            }
        })
        .expect("one retry survives the TTL");
    assert_eq!(id, live);
    assert_eq!(result.input, 2);
    // The evicted stream was dropped from the client during a wait (or,
    // if no sweep ever reached it, its next recv observes the dropped
    // channel) — either way the handle fails loudly.
    assert!(matches!(
        client.recv(dead),
        Err(ServeError::UnknownStream | ServeError::Evicted)
    ));
    server.shutdown();
}

#[test]
fn recv_any_wakes_on_delivery_not_on_a_polling_interval() {
    // The receive path is notification-driven: the worker signals the
    // client's wakeup channel on every delivery, so a blocked recv_any
    // wakes when the result exists — not up to a park interval later.
    // The old implementation swept every 200 µs, so 150 send→recv_any
    // round trips (each recv_any issued before the worker can have
    // stepped, i.e. each one parks) structurally cost ≥ ~30 ms in parks
    // alone; the wakeup path completes the whole loop in ~1–2 ms.
    //
    // Wall-clock assertions on shared CI hosts are noisy: a single
    // descheduling spike can blow any single attempt's budget. The old
    // implementation's cost is structural (every attempt parks), so a
    // best-of-several policy discriminates cleanly: one attempt inside
    // budget proves the notification path; park-and-sweep can never
    // produce one.
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    // Warm the path (thread spawn, first-step scratch growth).
    client.send(s, 1).unwrap();
    client.recv_any(Duration::from_secs(5)).unwrap();

    const ROUND_TRIPS: usize = 150;
    const ATTEMPTS: usize = 5;
    let budget = Duration::from_micros(200 * ROUND_TRIPS as u64);
    let mut best = Duration::MAX;
    for _ in 0..ATTEMPTS {
        let start = std::time::Instant::now();
        for t in 0..ROUND_TRIPS {
            client.send(s, t % 20).unwrap();
            let (id, result) = client.recv_any(Duration::from_secs(5)).unwrap();
            assert_eq!(id, s);
            assert_eq!(result.input, t % 20);
        }
        best = best.min(start.elapsed());
        if best < budget {
            break;
        }
    }
    assert!(
        best < budget,
        "best of {ATTEMPTS} × {ROUND_TRIPS} send→recv_any round trips took {best:?} — \
         ≥ {budget:?} means the receive path is parking on an interval \
         instead of waking on delivery"
    );
    server.shutdown();
}

#[test]
fn send_all_accounts_and_delivers_like_per_input_sends() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    let tokens: Vec<usize> = (0..9).map(|t| (t * 5 + 2) % 20).collect();
    client.send_all(s, &tokens).unwrap();
    for &t in &tokens {
        assert_eq!(client.recv(s).unwrap().input, t);
    }
    let stats = server.stats();
    assert_eq!(stats.submitted(), tokens.len() as u64);
    assert_eq!(stats.delivered(), tokens.len() as u64);

    // Validation is all-or-nothing and up front: one bad token rejects
    // the whole burst before anything reaches the queue.
    assert_eq!(
        client.send_all(s, &[1, 2, 999]),
        Err(ServeError::Engine(EngineError::InvalidInput))
    );
    assert_eq!(server.stats().submitted(), tokens.len() as u64);

    // Empty bursts and stale handles behave like `send`.
    client.send_all(s, &[]).unwrap();
    client.close(s).unwrap();
    assert_eq!(client.send_all(s, &[1]), Err(ServeError::UnknownStream));
    server.shutdown();
}

#[test]
fn try_send_reports_backpressure_on_a_full_queue() {
    // Capacity-1 queue, and the worker is likely parked between requests;
    // flooding with try_send must eventually see a full queue rather than
    // buffer without bound.
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_queue_capacity(1),
    );
    let mut client = server.client();
    let s = client.open().unwrap();
    let mut saw_backpressure = false;
    for t in 0..200 {
        match client.try_send(s, t % 20) {
            Ok(()) => {}
            Err(ServeError::Backpressure) => {
                saw_backpressure = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(
        saw_backpressure,
        "200 try_sends never hit a capacity-1 queue"
    );
    // Blocking send still gets through.
    client.send(s, 3).unwrap();
    server.shutdown();
}

#[test]
fn idle_sessions_are_ttl_evicted_and_recv_reports_it() {
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_session_ttl(Duration::from_millis(30)),
    );
    let mut client = server.client().with_recv_timeout(Duration::from_secs(2));
    // Even a fresh stream can cross the 30 ms TTL before its first
    // submit is processed when the scheduler starves the worker — the
    // same race `recv_any_drops_evicted_streams…` retries around. The
    // property under test is eviction *reporting*, not first-try luck,
    // so retry until one stream completes a round trip.
    let mut opened = 0u64;
    let s = (0..50)
        .find_map(|_| {
            let s = client.open().unwrap();
            opened += 1;
            match client.send(s, 1).and_then(|()| client.recv(s)) {
                Ok(_) => Some(s),
                Err(ServeError::Evicted | ServeError::UnknownStream) => None,
                Err(e) => panic!("unexpected round-trip error: {e:?}"),
            }
        })
        .expect("one retry beats the TTL");
    // Go idle past the TTL. The sweep runs on the worker's own clock,
    // so poll for the eviction instead of trusting a single sleep —
    // every opened session (survivor and failed retries) must go.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().open_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "TTL sweep never evicted the idle sessions"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.recv(s), Err(ServeError::Evicted));
    // The handle is forgotten client-side too.
    assert_eq!(client.recv(s), Err(ServeError::UnknownStream));
    let stats = server.stats();
    assert_eq!(stats.evicted_sessions(), opened);
    assert_eq!(stats.open_sessions(), 0);
    server.shutdown();
}

#[test]
fn deadline_misses_are_counted_but_tokens_still_served() {
    // A zero-ish deadline: every delivery is "late", yet every token is
    // processed (the deadline is an SLO alarm, not a drop policy).
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_token_deadline(Duration::from_nanos(1)),
    );
    let mut client = server.client();
    let s = client.open().unwrap();
    for t in 0..6 {
        client.send(s, t).unwrap();
    }
    for _ in 0..6 {
        client.recv(s).unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.delivered(), 6);
    assert_eq!(stats.deadline_misses(), 6);
    server.shutdown();
}

#[test]
fn stale_and_foreign_handles_fail_loudly() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    let mut client = server.client();
    let s = client.open().unwrap();
    client.close(s).unwrap();
    assert_eq!(client.send(s, 1), Err(ServeError::UnknownStream));
    assert_eq!(client.close(s), Err(ServeError::UnknownStream));
    assert!(matches!(client.recv(s), Err(ServeError::UnknownStream)));
    // Out-of-vocab tokens are rejected client-side with the engine error.
    let s2 = client.open().unwrap();
    assert_eq!(
        client.send(s2, 999),
        Err(ServeError::Engine(EngineError::InvalidInput))
    );
    server.shutdown();
}

#[test]
fn recv_timeout_fires_when_nothing_was_submitted() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client().with_recv_timeout(Duration::from_millis(30));
    let s = client.open().unwrap();
    assert_eq!(client.recv(s), Err(ServeError::RecvTimeout));
    server.shutdown();
}

#[test]
fn slow_consumers_are_evicted_not_buffered_without_bound() {
    // A stream that submits without ever recv-ing fills its bounded
    // result channel and is evicted — backpressure holds end-to-end.
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_result_capacity(4),
    );
    let mut client = server.client().with_recv_timeout(Duration::from_secs(2));
    let s = client.open().unwrap();
    for t in 0..20 {
        client.send(s, t % 20).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().evicted_sessions() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().evicted_sessions(), 1);
    // The buffered results (exactly the channel capacity) drain, then
    // the eviction surfaces.
    let mut got = 0;
    loop {
        match client.recv(s) {
            Ok(_) => got += 1,
            Err(ServeError::Evicted) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(got, 4);
    server.shutdown();
}

#[test]
fn dropping_a_client_closes_its_sessions() {
    // No TTL configured: cleanup must come from the client's Drop, not
    // the eviction safety net.
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    {
        let mut client = server.client();
        for _ in 0..6 {
            client.open().unwrap();
        }
        assert_eq!(client.open_streams(), 6);
    } // client dropped without closing anything
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().open_sessions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.stats().open_sessions(),
        0,
        "dropped client leaked sessions"
    );
    server.shutdown();
}

#[test]
fn shutdown_flushes_tokens_the_engine_already_accepted() {
    // A send that returned Ok must produce a result even when shutdown
    // lands right behind it in the queue: shutdown stops intake, not
    // in-flight work.
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    for t in 0..4 {
        client.send(s, t).unwrap();
    }
    server.shutdown(); // joins the worker; results were flushed first
    for t in 0..4 {
        assert_eq!(client.recv(s).unwrap().input, t);
    }
}

#[test]
fn shutdown_terminates_under_sustained_traffic() {
    // A client that never stops sending must not be able to hold
    // shutdown open: the Shutdown marker stops intake, later submits are
    // rejected, and the worker joins.
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut flooder = server.client();
    let s = flooder.open().unwrap();
    let driver = std::thread::spawn(move || {
        let mut sent = 0u64;
        while flooder.send(s, (sent % 20) as usize).is_ok() {
            sent += 1;
        }
        sent
    });
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown(); // must return despite the continuous sends
    let sent = driver.join().unwrap();
    assert!(sent > 0, "flooder never got a send through");
}

#[test]
fn server_shutdown_surfaces_as_server_closed() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    server.shutdown();
    assert_eq!(client.send(s, 1), Err(ServeError::ServerClosed));
    assert!(client.open().is_err());
}

#[test]
fn load_generator_sustains_mixed_traffic() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    let report = LoadGenerator::new(LoadConfig {
        streams: 100,
        tokens_per_round: 2,
        rounds: 3,
        churn: 0.3,
        seed: 11,
        deadline: Some(Duration::from_secs(60)),
        ..LoadConfig::default()
    })
    .run(&server)
    .unwrap();
    assert_eq!(report.tokens, 600);
    assert!(report.opened > 100, "churn produced no reopens");
    assert_eq!(report.closed, report.opened);
    // One latency sample per received token; a 60 s deadline cannot miss.
    assert_eq!(report.token_latency.count(), 600);
    assert!(report.token_latency.p999() > 0);
    assert_eq!(report.deadline_misses, 0);
    assert_eq!(report.worst_stream_miss_rate, 0.0);
    // Closes are asynchronous: wait for the shard queues to drain before
    // checking that nothing leaked.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().open_sessions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.delivered(), 600);
    assert_eq!(stats.open_sessions(), 0, "load run leaked sessions");
    // Both shards saw traffic (placement hashing spreads 100+ streams).
    for shard in &stats.shards {
        assert!(shard.delivered > 0, "shard {} starved", shard.shard);
    }
    server.shutdown();
}
