//! The serving layer's headline contract: sharding is invisible in the
//! outputs, for every served model family. A `Server` with any shard
//! count produces **bit-for-bit** the logits a single single-threaded
//! `Engine` produces when it replays the same per-session token streams.
//!
//! Why this holds: batching inside one engine never changes a lane's
//! output (proven by `zskip-runtime`'s proptests), and shards are fully
//! independent engines over clones of the same weights — so neither the
//! shard a stream lands on nor the traffic interleaving can move a bit.
//! The helpers below are generic over the family, so the LSTM char-LM
//! and the 3-gate GRU run through the identical harness.

use zskip_runtime::{
    Engine, EngineConfig, FrozenCharLm, FrozenGruCharLm, FrozenModel, FrozenQuantizedCharLm,
    FrozenSeqClassifier,
};
use zskip_serve::{ServeConfig, Server, StreamId};

const VOCAB: usize = 24;
const HIDDEN: usize = 32;
const STREAMS: usize = 12;
const TOKENS: usize = 9;

fn token_streams() -> Vec<Vec<usize>> {
    // Deterministic, distinct per-stream token sequences.
    (0..STREAMS)
        .map(|s| (0..TOKENS).map(|t| (s * 7 + t * 5 + 3) % VOCAB).collect())
        .collect()
}

/// Reference: one synchronous engine replaying every stream.
fn single_engine_logits<M: FrozenModel<Input = usize>>(
    model: &M,
    threshold: f32,
) -> Vec<Vec<Vec<f32>>> {
    let mut engine = Engine::new(model.clone(), EngineConfig::for_threshold(threshold));
    let streams = token_streams();
    let ids: Vec<_> = streams.iter().map(|_| engine.open_session()).collect();
    for (tokens, &id) in streams.iter().zip(&ids) {
        for &tok in tokens {
            engine.submit(id, tok).unwrap();
        }
    }
    engine.run_until_idle();
    ids.iter()
        .map(|&id| {
            (0..TOKENS)
                .map(|_| engine.poll(id).unwrap().expect("result").logits)
                .collect()
        })
        .collect()
}

/// Serving path: a sharded server fed the same streams, interleaved one
/// token per stream per wave so cross-stream batching really happens.
fn served_logits<M: FrozenModel<Input = usize>>(
    model: &M,
    threshold: f32,
    shards: usize,
) -> Vec<Vec<Vec<f32>>> {
    let server = Server::start(
        model.clone(),
        ServeConfig::for_threshold(threshold).with_shards(shards),
    );
    let mut client = server.client();
    let streams = token_streams();
    let ids: Vec<StreamId> = streams.iter().map(|_| client.open().unwrap()).collect();
    let mut collected: Vec<Vec<Vec<f32>>> = vec![Vec::new(); STREAMS];
    for wave in 0..TOKENS {
        for (tokens, &id) in streams.iter().zip(&ids) {
            client.send(id, tokens[wave]).unwrap();
        }
        for ((tokens, &id), out) in streams.iter().zip(&ids).zip(collected.iter_mut()) {
            let result = client.recv(id).unwrap();
            assert_eq!(result.input, tokens[wave], "results out of order");
            out.push(result.logits);
        }
    }
    for id in ids {
        client.close(id).unwrap();
    }
    server.shutdown();
    collected
}

/// Asserts a sharded server matches the single-engine reference
/// bit-for-bit at several shard counts.
fn assert_sharding_invisible<M: FrozenModel<Input = usize>>(
    model: &M,
    threshold: f32,
    family: &str,
) {
    let reference = single_engine_logits(model, threshold);
    for shards in [1usize, 2, 3, 5] {
        let served = served_logits(model, threshold, shards);
        for s in 0..STREAMS {
            for t in 0..TOKENS {
                assert_eq!(
                    reference[s][t].len(),
                    served[s][t].len(),
                    "{family} shards={shards} stream={s} step={t}: logit width"
                );
                for (r, v) in reference[s][t].iter().zip(&served[s][t]) {
                    assert_eq!(
                        r.to_bits(),
                        v.to_bits(),
                        "{family} shards={shards} stream={s} step={t}: {r} vs {v}"
                    );
                }
            }
        }
    }
}

/// Asserts shard-count invisibility holds while streams churn: closing
/// streams and opening new ones mid-traffic must not disturb the
/// surviving streams' outputs.
fn assert_churn_invisible<M: FrozenModel<Input = usize>>(model: &M, threshold: f32, family: &str) {
    let reference = single_engine_logits(model, threshold);

    let server = Server::start(
        model.clone(),
        ServeConfig::for_threshold(threshold).with_shards(3),
    );
    let mut client = server.client();
    let streams = token_streams();
    let ids: Vec<StreamId> = streams.iter().map(|_| client.open().unwrap()).collect();
    let mut collected: Vec<Vec<Vec<f32>>> = vec![Vec::new(); STREAMS];
    for wave in 0..TOKENS {
        // Noise traffic: an unrelated stream opens, speaks, and dies.
        let noise = client.open().unwrap();
        client.send(noise, wave % VOCAB).unwrap();
        for (tokens, &id) in streams.iter().zip(&ids) {
            client.send(id, tokens[wave]).unwrap();
        }
        client.recv(noise).unwrap();
        client.close(noise).unwrap();
        for (&id, out) in ids.iter().zip(collected.iter_mut()) {
            out.push(client.recv(id).unwrap().logits);
        }
    }
    server.shutdown();

    for s in 0..STREAMS {
        for t in 0..TOKENS {
            for (r, v) in reference[s][t].iter().zip(&collected[s][t]) {
                assert_eq!(r.to_bits(), v.to_bits(), "{family} stream={s} step={t}");
            }
        }
    }
}

#[test]
fn sharded_serving_is_bit_identical_to_a_single_engine() {
    let model = FrozenCharLm::random(VOCAB, HIDDEN, 99);
    assert_sharding_invisible(&model, 0.25, "char-lm");
}

#[test]
fn sharded_gru_serving_is_bit_identical_to_a_single_engine() {
    let model = FrozenGruCharLm::random(VOCAB, HIDDEN, 77);
    assert_sharding_invisible(&model, 0.25, "gru");
}

#[test]
fn sharded_quantized_serving_is_bit_identical_to_a_single_engine() {
    // The first family whose session state is not f32: the generic
    // harness proves the `FrozenModel::State` seam holds under sharding
    // — i8 codes migrate through open/submit/close exactly like float
    // lanes, and the integer datapath leaves nothing to rounding. The
    // serve config threshold must match the frozen one (the quantized
    // family bakes Eq. 5 into its datapath and asserts agreement).
    let threshold = 0.25;
    let model = FrozenQuantizedCharLm::random(VOCAB, HIDDEN, threshold, 55);
    assert_sharding_invisible(&model, threshold, "quantized");
}

#[test]
fn determinism_survives_churned_reopens() {
    let model = FrozenCharLm::random(VOCAB, HIDDEN, 123);
    assert_churn_invisible(&model, 0.2, "char-lm");
}

#[test]
fn quantized_determinism_survives_churned_reopens() {
    let threshold = 0.2;
    let model = FrozenQuantizedCharLm::random(VOCAB, HIDDEN, threshold, 321);
    assert_churn_invisible(&model, threshold, "quantized");
}

#[test]
fn send_all_is_bit_identical_to_per_pixel_sends() {
    // The classifier's serving pattern is the paper's sequential-MNIST
    // scan: 784 pixels streamed into one session. `send_all` moves the
    // whole scan in one queue request; the engine queues per-session
    // FIFO either way, so every delivered logit row must match the
    // per-pixel path bit-for-bit — batching the *transport* must be as
    // invisible as sharding is.
    let model = FrozenSeqClassifier::random(10, HIDDEN, 42);
    let threshold = 0.25;
    let pixels: Vec<f32> = (0..784).map(|i| ((i * 37) % 256) as f32 / 256.0).collect();

    let run = |bulk: bool| -> Vec<Vec<f32>> {
        let server = Server::start(
            model.clone(),
            ServeConfig::for_threshold(threshold)
                .with_shards(2)
                .with_queue_capacity(2048),
        );
        let mut client = server.client();
        let s = client.open().unwrap();
        if bulk {
            client.send_all(s, &pixels).unwrap();
        } else {
            for &p in &pixels {
                client.send(s, p).unwrap();
            }
        }
        let out: Vec<Vec<f32>> = pixels
            .iter()
            .map(|&p| {
                let result = client.recv(s).unwrap();
                assert_eq!(result.input, p, "pixel order disturbed");
                result.logits
            })
            .collect();
        client.close(s).unwrap();
        server.shutdown();
        out
    };

    let per_pixel = run(false);
    let bulk = run(true);
    for (t, (a, b)) in per_pixel.iter().zip(&bulk).enumerate() {
        assert_eq!(a.len(), b.len(), "step {t}: logit width");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "step {t}: {x} vs {y}");
        }
    }
}
