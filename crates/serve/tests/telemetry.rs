//! Telemetry contracts of the serving layer: latency histograms, the
//! per-shard event ring, engine-stats publish cadence, and the text/JSON
//! snapshot renderings.

use std::time::Duration;
use zskip_runtime::FrozenCharLm;
use zskip_serve::{EventKind, ServeConfig, ServeError, Server};

fn model() -> FrozenCharLm {
    FrozenCharLm::random(20, 16, 5)
}

/// The publish-cadence regression: engine counters are published between
/// the step and the result fan-out, so a client holding a result can
/// never observe engine stats predating the step that produced it. The
/// old once-per-outer-loop cadence failed this under bursts: several
/// steps could deliver before the next publish.
#[test]
fn stats_seen_by_a_result_holder_cover_that_result() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    let mut received = 0u64;
    for round in 0..25usize {
        for t in 0..4 {
            client.send(s, (round + t) % 20).unwrap();
        }
        for _ in 0..4 {
            client.recv(s).unwrap();
            received += 1;
            let tokens = server.stats().tokens();
            assert!(
                tokens >= received,
                "holding result #{received} but published engine stats \
                 count only {tokens} tokens"
            );
        }
    }
    server.shutdown();
}

#[test]
fn latency_histograms_fill_under_traffic() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    for t in 0..8 {
        client.send(s, t).unwrap();
    }
    for _ in 0..8 {
        client.recv(s).unwrap();
    }
    let stats = server.stats();
    // One queue-wait sample per accepted token, one end-to-end sample
    // per delivery; step count varies with coalescing but is nonzero.
    assert_eq!(stats.queue_wait().count(), 8);
    assert_eq!(stats.token_latency().count(), 8);
    let steps = stats.step_time().count();
    assert!((1..=8).contains(&steps), "step_time count {steps}");
    // End-to-end includes the queue wait, so its p99 upper bound cannot
    // be below... nothing guaranteed bucket-wise; just sanity: nonzero.
    assert!(stats.token_latency().p99() > 0);
    server.shutdown();
}

#[test]
fn bulk_submit_records_one_queue_wait_sample_per_token() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let s = client.open().unwrap();
    let burst: Vec<usize> = (0..12).map(|t| t % 20).collect();
    client.send_all(s, &burst).unwrap();
    for _ in 0..12 {
        client.recv(s).unwrap();
    }
    assert_eq!(server.stats().queue_wait().count(), 12);
    server.shutdown();
}

#[test]
fn session_lifecycle_is_logged_to_the_event_ring() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(1));
    let mut client = server.client();
    let a = client.open().unwrap();
    let b = client.open().unwrap();
    client.send(a, 1).unwrap();
    client.recv(a).unwrap();
    client.close(a).unwrap();
    client.close(b).unwrap();
    // Closes are async; wait until both are visible.
    for _ in 0..100 {
        if server.stats().open_sessions() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = server.drain_events();
    let opens = events
        .iter()
        .filter(|e| e.event.kind == EventKind::SessionOpen)
        .count();
    let closes = events
        .iter()
        .filter(|e| e.event.kind == EventKind::SessionClose)
        .count();
    assert_eq!(opens, 2, "events: {events:?}");
    assert_eq!(closes, 2, "events: {events:?}");
    // Timestamps are monotone within a shard's drained batch.
    for pair in events.windows(2) {
        assert!(pair[0].event.at_micros <= pair[1].event.at_micros);
    }
    // The drain emptied the rings; nothing new happened since.
    assert!(server.drain_events().is_empty());
    server.shutdown();
}

#[test]
fn deadline_misses_and_ttl_evictions_emit_events() {
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_token_deadline(Duration::from_nanos(1))
            .with_session_ttl(Duration::from_millis(30)),
    );
    let mut client = server.client().with_recv_timeout(Duration::from_secs(2));
    let s = client.open().unwrap();
    client.send(s, 1).unwrap();
    client.recv(s).unwrap();
    // Idle past the TTL until the sweep evicts the session.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(client.recv(s), Err(ServeError::Evicted));
    let events = server.drain_events();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.event.kind).collect();
    assert!(
        kinds.contains(&EventKind::DeadlineMiss),
        "events: {events:?}"
    );
    assert!(
        kinds.contains(&EventKind::SessionEvict),
        "events: {events:?}"
    );
    server.shutdown();
}

#[test]
fn blocking_sends_into_a_full_queue_emit_backpressure_stalls() {
    // Capacity-1 queue: burst blocking sends; some must find the queue
    // full, park, and leave a stall event behind.
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_queue_capacity(1),
    );
    let mut client = server.client();
    let s = client.open().unwrap();
    for t in 0..200 {
        client.send(s, t % 20).unwrap();
    }
    for _ in 0..200 {
        client.recv(s).unwrap();
    }
    let stalls = server
        .drain_events()
        .iter()
        .filter(|e| e.event.kind == EventKind::BackpressureStall)
        .count();
    assert!(
        stalls > 0,
        "200 blocking sends into a capacity-1 queue never stalled"
    );
    server.shutdown();
}

#[test]
fn event_ring_overflow_is_counted_not_blocking() {
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(1)
            .with_event_capacity(2),
    );
    let mut client = server.client();
    // Each open+close is two events; at capacity 2 most are overwritten.
    for _ in 0..8 {
        let s = client.open().unwrap();
        client.close(s).unwrap();
    }
    for _ in 0..100 {
        if server.stats().open_sessions() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    let dropped: u64 = stats.shards.iter().map(|s| s.dropped_events).sum();
    assert!(
        dropped > 0,
        "16 events through a capacity-2 ring, none dropped"
    );
    assert!(server.drain_events().len() <= 2);
    server.shutdown();
}

#[test]
fn snapshot_renders_as_table_and_json() {
    let server = Server::start(model(), ServeConfig::for_threshold(0.2).with_shards(2));
    let mut client = server.client();
    let s = client.open().unwrap();
    for t in 0..6 {
        client.send(s, t).unwrap();
    }
    for _ in 0..6 {
        client.recv(s).unwrap();
    }
    let stats = server.stats();
    let table = stats.to_string();
    assert!(table.contains("shard"), "table:\n{table}");
    assert!(table.contains("token-latency"), "table:\n{table}");
    let json = stats.to_json();
    for key in [
        "\"shards\"",
        "\"queue_wait\"",
        "\"step_time\"",
        "\"token_latency\"",
        "\"p99_ns\"",
        "\"skip_fraction\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    server.shutdown();
}
