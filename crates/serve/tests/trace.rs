//! Trace-integrity contracts of the serving layer: a churny multi-shard
//! run produces a drained trace that is globally ordered, well-nested
//! (stage children inside their batch-step parents), deterministic in
//! which streams it sampled, and renders to Chrome trace-event JSON that
//! strict-parses back through the vendored serde.
//!
//! Every test branches on [`trace_env_allowed`] so the whole binary also
//! passes under `ZSKIP_TRACE=0` — the veto must mean *no spans at all*,
//! and the CI lane runs both ways.

use std::time::Duration;
use zskip_runtime::FrozenCharLm;
use zskip_serve::{
    trace_env_allowed, validate_chrome_json, LoadConfig, LoadGenerator, ServeConfig, Server,
    SpanKind, TraceExport, TraceSampler,
};

fn model() -> FrozenCharLm {
    FrozenCharLm::random(20, 16, 5)
}

/// A 2-shard server with churny load-generator traffic; returns the
/// drained trace.
fn churny_trace(sample_one_in: u64, streams: usize, rounds: usize) -> TraceExport {
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(2)
            .with_trace_sampling(sample_one_in)
            // Large enough that nothing is overwritten mid-test: orphaned
            // stage children (parent dropped, child kept) would make the
            // nesting assertions meaningless.
            .with_trace_span_capacity(1 << 17),
    );
    let load = LoadGenerator::new(LoadConfig {
        streams,
        tokens_per_round: 4,
        rounds,
        churn: 0.2,
        seed: 11,
        deadline: Some(Duration::from_secs(5)),
        progress_every: 0,
    });
    load.run(&server).expect("load run succeeds");
    let trace = server.drain_trace();
    server.shutdown();
    trace
}

#[test]
fn churny_two_shard_run_traces_the_whole_token_life() {
    let trace = churny_trace(1, 48, 6);
    if !trace_env_allowed() {
        assert!(trace.is_empty(), "ZSKIP_TRACE=0 must veto all spans");
        return;
    }
    assert_eq!(trace.dropped(), 0, "test ring was sized to hold everything");
    assert!(!trace.is_empty());
    // Both shards contributed (48 streams hash across 2 shards).
    let shards: std::collections::BTreeSet<usize> = trace.spans().iter().map(|s| s.shard).collect();
    assert_eq!(shards.len(), 2, "spans from shards {shards:?}");
    // Every server-side stage of a token's life shows up.
    for kind in [
        SpanKind::ClientSubmit,
        SpanKind::QueueWait,
        SpanKind::BatchStep,
        SpanKind::Delivery,
        SpanKind::ClientRecv,
        SpanKind::Token,
    ] {
        assert!(
            trace.spans().iter().any(|s| s.span.kind == kind),
            "no {} span in the trace",
            kind.name()
        );
    }
    // Globally ordered across shards: the drain merges every ring onto
    // the shared clock origin.
    for pair in trace.spans().windows(2) {
        assert!(pair[0].span.start_ns <= pair[1].span.start_ns);
    }
    // Intervals are sane.
    for s in trace.spans() {
        assert!(s.span.end_ns >= s.span.start_ns);
    }
}

#[test]
fn stage_children_nest_inside_their_batch_step_parent() {
    let trace = churny_trace(1, 48, 6);
    if !trace_env_allowed() {
        return;
    }
    assert_eq!(trace.dropped(), 0);
    // Index the parents up front: (shard, stream, step index) names a
    // batch-step uniquely.
    let parents: std::collections::HashMap<(usize, u64, u64), &zskip_serve::ShardSpan> = trace
        .spans()
        .iter()
        .filter(|p| p.span.kind == SpanKind::BatchStep)
        .map(|p| ((p.shard, p.span.trace.0, p.span.a), p))
        .collect();
    let mut stage_spans = 0usize;
    for child in trace.spans() {
        let SpanKind::Stage(_) = child.span.kind else {
            continue;
        };
        stage_spans += 1;
        // The parent is the BatchStep on the same shard, same stream,
        // same step index (payload `a` ties them together).
        let parent = parents
            .get(&(child.shard, child.span.trace.0, child.span.a))
            .unwrap_or_else(|| panic!("stage span without batch-step parent: {child}"));
        assert!(
            parent.span.start_ns <= child.span.start_ns && child.span.end_ns <= parent.span.end_ns,
            "child {child} escapes parent {parent}"
        );
    }
    // Stage timing is on by default, so a traced run has stage children
    // (unless the stage-timing env veto is active in this process).
    if zskip_telemetry::stage_timing_env_allowed() {
        assert!(stage_spans > 0, "no stage child spans recorded");
    }
    // Batch-step payloads decode: batch size is nonzero, skip permille
    // is a permille.
    for s in trace.spans() {
        if s.span.kind == SpanKind::BatchStep {
            assert!(s.span.b >> 16 > 0, "batch size must be nonzero");
            assert!(s.span.b & 0xFFFF <= 1000, "skip permille out of range");
        }
    }
}

#[test]
fn sampling_is_deterministic_and_honored_by_every_recorder() {
    let trace = churny_trace(4, 48, 6);
    if !trace_env_allowed() {
        return;
    }
    // Every drained span belongs to a stream the sampler selects: the
    // TraceId *is* the sampling key, so the drained set must be exactly
    // reproducible from the rate.
    let sampler = TraceSampler::new(4);
    for s in trace.spans() {
        assert!(
            sampler.sampled(s.span.trace.0),
            "span from unsampled stream: {s}"
        );
    }
    // Rate 0 turns tracing off outright.
    let off = churny_trace(0, 16, 2);
    assert!(off.is_empty(), "sampling rate 0 must record nothing");
}

#[test]
fn exported_chrome_json_strict_parses_and_validates() {
    let trace = churny_trace(1, 12, 2);
    let json = trace.to_chrome_json();
    let v = validate_chrome_json(&json).expect("export validates");
    if !trace_env_allowed() {
        assert_eq!(v.events, 0);
        return;
    }
    let tokens = trace
        .spans()
        .iter()
        .filter(|s| s.span.kind == SpanKind::Token)
        .count();
    // Every non-token span renders as one complete event; every token
    // umbrella as one balanced async begin/end pair.
    assert_eq!(v.complete, trace.len() - tokens);
    assert_eq!(v.async_begins, tokens);
    assert_eq!(v.async_ends, tokens);
    assert!(v.metadata > 0, "process/thread names are emitted");
    // The strict parser rejects the same document with trailing input.
    assert!(validate_chrome_json(&format!("{json}\n[]")).is_err());
}

#[test]
fn client_and_server_agree_on_which_streams_trace() {
    let server = Server::start(
        model(),
        ServeConfig::for_threshold(0.2)
            .with_shards(2)
            .with_trace_sampling(4),
    );
    let mut client = server.client();
    for _ in 0..32 {
        let id = client.open().expect("open");
        assert_eq!(client.is_traced(id), server.is_traced(id));
        if !trace_env_allowed() {
            assert!(!client.is_traced(id));
        }
        client.close(id).expect("close");
    }
    server.shutdown();
}
