//! The sharded server: N worker threads, each owning a private [`Engine`],
//! fed by bounded request queues.
//!
//! ```text
//!               ┌────────────── Server ──────────────┐
//!  Client ──┬──▶ queue 0 ─▶ worker 0: Engine shard 0 ─┬─▶ per-stream
//!  Client ──┼──▶ queue 1 ─▶ worker 1: Engine shard 1 ─┼─▶ result
//!   ...     └──▶ queue k ─▶ worker k: Engine shard k ─┘   channels
//! ```
//!
//! Each worker drains its queue, coalesces every ready session into
//! batched engine steps, forwards results to the owning stream's channel,
//! and sweeps idle sessions past the TTL. Queues are `sync_channel`s with
//! a fixed capacity, so a flooded shard pushes back on producers instead
//! of buffering without bound.

use crate::client::{stream_trace_key, Client};
use crate::stats::{duration_nanos, ServerStats, ShardEvent, ShardShared};
use crate::trace_export::{ShardSpan, TraceExport};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zskip_runtime::{
    Engine, EngineConfig, EngineStats, FrozenCharLm, FrozenModel, SessionId, Stage, StepResult,
};
use zskip_telemetry::{EventKind, SpanKind, TraceId, TraceSampler};

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Per-shard engine configuration (threshold, batch cap, skip policy).
    pub engine: EngineConfig,
    /// Worker threads, each owning one engine shard.
    pub shards: usize,
    /// Capacity of each shard's bounded request queue — the backpressure
    /// knob: blocking `send`s stall and `try_send`s fail once a queue
    /// holds this many requests.
    pub queue_capacity: usize,
    /// Capacity of each stream's bounded result channel. A consumer that
    /// stops `recv`ing while submitting is **evicted** once its channel
    /// fills — results are never buffered without bound.
    pub result_capacity: usize,
    /// Evict sessions idle longer than this (no submit and no delivery).
    /// `None` disables eviction.
    pub session_ttl: Option<Duration>,
    /// Per-token latency target: deliveries later than this after submit
    /// count as deadline misses in [`ServerStats`]. Tokens are still
    /// processed — the counter is the alarm, not a drop policy, so
    /// outputs stay deterministic.
    pub token_deadline: Option<Duration>,
    /// How often an idle worker wakes to sweep TTLs.
    pub idle_tick: Duration,
    /// Capacity of each shard's telemetry event ring. When more events
    /// occur between [`Server::drain_events`] calls than fit, the oldest
    /// are overwritten (and counted as `dropped_events`) — workers never
    /// block or allocate for a slow observer.
    pub event_capacity: usize,
    /// Trace sampling rate: streams whose `mix64(trace key) % n == 0`
    /// record spans; everyone else pays one hash-and-modulo per
    /// decision and nothing more. `0` disables tracing outright, `1`
    /// traces every stream. `ZSKIP_TRACE=0` in the environment vetoes
    /// tracing process-wide regardless of this knob.
    pub trace_sample_one_in: u64,
    /// Capacity of each shard's trace span ring. When sampled spans
    /// outpace [`Server::drain_trace`] calls, the oldest are overwritten
    /// (counted as `dropped_spans`) — same never-block-the-worker
    /// discipline as the event ring.
    pub trace_span_capacity: usize,
}

impl ServeConfig {
    /// Serving configuration for a model trained at `threshold`:
    /// one shard per available core (capped at 8), queues of 1024
    /// requests, no TTL, no deadline.
    pub fn for_threshold(threshold: f32) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self {
            engine: EngineConfig::for_threshold(threshold),
            shards,
            queue_capacity: 1024,
            result_capacity: 1024,
            session_ttl: None,
            token_deadline: None,
            idle_tick: Duration::from_millis(20),
            event_capacity: 256,
            trace_sample_one_in: 64,
            trace_span_capacity: 8192,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the per-stream result-channel capacity.
    pub fn with_result_capacity(mut self, capacity: usize) -> Self {
        self.result_capacity = capacity;
        self
    }

    /// Sets the idle-session TTL.
    pub fn with_session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = Some(ttl);
        self
    }

    /// Sets the per-token deadline.
    pub fn with_token_deadline(mut self, deadline: Duration) -> Self {
        self.token_deadline = Some(deadline);
        self
    }

    /// Sets the per-shard event-ring capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Sets the trace sampling rate (`1` = every stream, `0` = off).
    pub fn with_trace_sampling(mut self, one_in: u64) -> Self {
        self.trace_sample_one_in = one_in;
        self
    }

    /// Sets the per-shard trace span-ring capacity.
    pub fn with_trace_span_capacity(mut self, capacity: usize) -> Self {
        self.trace_span_capacity = capacity;
        self
    }
}

/// One request travelling a shard queue (crate-internal), generic over
/// the served family's input type.
pub(crate) enum Request<I> {
    /// Open a session; reply with its generational id and register the
    /// stream's (bounded) result channel plus the owning client's
    /// wakeup channel (signalled on every delivery so a blocked
    /// `recv_any` wakes immediately).
    Open {
        reply: Sender<SessionId>,
        results: SyncSender<StepResult<I>>,
        wakeup: SyncSender<()>,
    },
    /// Feed one input to a session.
    Submit {
        id: SessionId,
        input: I,
        enqueued: Instant,
    },
    /// Feed a whole burst of inputs to a session in one queue hop — the
    /// bulk path [`crate::Client::send_all`] takes, so a 784-step MNIST
    /// scan pays one channel round-trip instead of 784.
    SubmitMany {
        id: SessionId,
        inputs: Vec<I>,
        enqueued: Instant,
    },
    /// Close a session and drop its result channel.
    Close { id: SessionId },
    /// Stop the worker after the queue drained up to this request.
    Shutdown,
}

impl<I> Request<I> {
    /// The raw session id this request targets, for event payloads
    /// (0 for requests without a session: opens and shutdowns).
    pub(crate) fn session_detail(&self) -> u64 {
        match self {
            Request::Submit { id, .. } | Request::SubmitMany { id, .. } | Request::Close { id } => {
                id.0
            }
            Request::Open { .. } | Request::Shutdown => 0,
        }
    }
}

/// A shard's client-facing half (crate-internal).
pub(crate) struct ShardHandle<I> {
    pub tx: SyncSender<Request<I>>,
    pub shared: Arc<ShardShared>,
}

/// The sharded serving layer, generic over the served [`FrozenModel`]
/// family (LSTM char-LM by default; GRU, word-LM and classifier models
/// serve through the identical front-end).
///
/// A `Server` owns `shards` worker threads, each running a private
/// [`Engine`] over a clone of the frozen model. Streams are placed on a
/// shard by hashing their open ticket; from then on the stream's
/// [`crate::StreamId`] carries the shard plus the engine's generational
/// [`SessionId`], so every later request routes to the same engine and
/// stale handles keep failing loudly.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops the
/// workers after their queues drain.
pub struct Server<M: FrozenModel = FrozenCharLm> {
    shards: Arc<Vec<ShardHandle<M::Input>>>,
    open_counter: Arc<AtomicU64>,
    workers: Vec<JoinHandle<()>>,
    /// Weight-free input-domain descriptor — what clients validate and
    /// sample against. Kept instead of an extra full model clone: the
    /// shard engines hold the only weight copies.
    spec: M::Spec,
    result_capacity: usize,
    /// The deterministic stream sampler, shared (by copy) with every
    /// worker and client so all sides agree on which streams trace.
    sampler: TraceSampler,
}

impl<M: FrozenModel> Server<M> {
    /// Starts `config.shards` worker threads serving clones of `model`.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.queue_capacity` is zero.
    pub fn start(model: M, config: ServeConfig) -> Self {
        assert!(config.shards > 0, "server needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.result_capacity > 0,
            "result capacity must be positive"
        );
        assert!(config.event_capacity > 0, "event capacity must be positive");
        assert!(
            config.trace_span_capacity > 0,
            "trace span capacity must be positive"
        );
        let spec = model.input_spec();
        // One clock origin for every shard's event and span ring: drained
        // timestamps from different shards live on the same axis, so a
        // cross-shard merge by timestamp is meaningful.
        let origin = Instant::now();
        let sampler = TraceSampler::new(config.trace_sample_one_in);
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        // The last shard takes the model by value, the rest clone — so a
        // server retains exactly one weight copy per shard, no more.
        let mut model = Some(model);
        for shard in 0..config.shards {
            let shard_model = if shard + 1 == config.shards {
                model.take().expect("one model per shard")
            } else {
                model.as_ref().expect("model available").clone()
            };
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
            let shared = Arc::new(ShardShared::new(
                config.event_capacity,
                config.trace_span_capacity,
                origin,
            ));
            let worker = Worker {
                engine: Engine::new(shard_model, config.engine),
                rx,
                shared: Arc::clone(&shared),
                sessions: HashMap::new(),
                session_ttl: config.session_ttl,
                token_deadline: config.token_deadline,
                idle_tick: config.idle_tick,
                last_sweep: Instant::now(),
                delivered: Vec::new(),
                last_dense_steps: 0,
                shard: shard as u32,
                sampler,
                last_stats: EngineStats::default(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("zskip-serve-{shard}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker"),
            );
            shards.push(ShardHandle { tx, shared });
        }
        Self {
            shards: Arc::new(shards),
            open_counter: Arc::new(AtomicU64::new(0)),
            workers,
            spec,
            result_capacity: config.result_capacity,
            sampler,
        }
    }

    /// Creates a blocking client handle. Clients are independent; create
    /// one per driving thread.
    pub fn client(&self) -> Client<M> {
        Client::new(
            Arc::clone(&self.shards),
            Arc::clone(&self.open_counter),
            self.spec,
            self.result_capacity,
            self.sampler,
        )
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The served family's input-domain descriptor.
    pub fn input_spec(&self) -> M::Spec {
        self.spec
    }

    /// Snapshots aggregate statistics across all shards.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.shared.snapshot(i))
                .collect(),
        }
    }

    /// Drains every shard's event ring, merged into one global-timestamp
    /// order (all rings share one clock origin), without stopping the
    /// workers (they keep pushing while the drained batch is handed
    /// out). Events overwritten before a drain are reported in each
    /// shard's `dropped_events` counter, not here.
    pub fn drain_events(&self) -> Vec<ShardEvent> {
        let mut events = Vec::new();
        for (shard, handle) in self.shards.iter().enumerate() {
            events.extend(
                handle
                    .shared
                    .events
                    .drain()
                    .into_iter()
                    .map(|event| ShardEvent { shard, event }),
            );
        }
        // Stable ties on shard index so a drain is deterministic for
        // events stamped in the same microsecond.
        events.sort_by_key(|e| (e.event.at_micros, e.shard));
        events
    }

    /// Drains every shard's span ring into one [`TraceExport`], spans
    /// merged in global start-timestamp order (all rings share one clock
    /// origin). Spans overwritten before the drain are summed into the
    /// export's [`dropped`](TraceExport::dropped) count and each shard's
    /// `dropped_spans` stat.
    pub fn drain_trace(&self) -> TraceExport {
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for (shard, handle) in self.shards.iter().enumerate() {
            dropped += handle.shared.spans.dropped();
            spans.extend(
                handle
                    .shared
                    .spans
                    .drain()
                    .into_iter()
                    .map(|span| ShardSpan { shard, span }),
            );
        }
        spans.sort_by_key(|s| (s.span.start_ns, s.span.end_ns, s.shard, s.span.id.0));
        TraceExport::new(spans, dropped)
    }

    /// Whether a given stream would be traced under this server's
    /// sampler (deterministic in the stream id).
    pub fn is_traced(&self, id: crate::StreamId) -> bool {
        self.sampler.sampled(id.trace_key())
    }

    /// Stops all workers after their queues drain and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        for shard in self.shards.iter() {
            // Keep the queue-depth counter balanced: the worker
            // decrements it for every dequeued request, Shutdown
            // included.
            shard
                .shared
                .queue_depth
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // A full queue still delivers Shutdown eventually; a
            // disconnected one means the worker is already gone.
            if shard.tx.send(Request::Shutdown).is_err() {
                shard
                    .shared
                    .queue_depth
                    .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<M: FrozenModel> Drop for Server<M> {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Book-keeping one worker holds per open session.
struct SessionEntry<I> {
    results: SyncSender<StepResult<I>>,
    /// The owning client's wakeup channel (capacity 1): `try_send` after
    /// every delivery — and before any removal of this entry — so a
    /// `recv_any` blocked on the client side wakes immediately instead
    /// of parking on a sweep interval. A full channel just means a
    /// wakeup is already pending.
    wakeup: SyncSender<()>,
    last_active: Instant,
    /// Submit timestamps of queued inputs, for deadline accounting.
    enqueued_at: std::collections::VecDeque<Instant>,
}

/// One shard's worker loop state.
struct Worker<M: FrozenModel> {
    engine: Engine<M>,
    rx: Receiver<Request<M::Input>>,
    shared: Arc<ShardShared>,
    sessions: HashMap<u64, SessionEntry<M::Input>>,
    session_ttl: Option<Duration>,
    token_deadline: Option<Duration>,
    idle_tick: Duration,
    last_sweep: Instant,
    /// Reused copy of the ids one engine step delivered (the engine's
    /// own slice borrows its scratch, which `deliver` needs mutably).
    delivered: Vec<SessionId>,
    /// Engine `dense_steps` value at the last publish, for emitting a
    /// `DenseFallback` event exactly when the counter advances.
    last_dense_steps: u64,
    /// This worker's shard index, for computing stream trace keys.
    shard: u32,
    /// The server-wide deterministic stream sampler.
    sampler: TraceSampler,
    /// Engine stats at the previous step, for per-step deltas (stage
    /// laps, skip rate) on the trace spans.
    last_stats: EngineStats,
}

impl<M: FrozenModel> Worker<M> {
    fn run(mut self) {
        loop {
            // Park until a request arrives (bounded, so TTL sweeps still
            // happen while idle).
            match self.rx.recv_timeout(self.idle_tick) {
                Ok(req) => {
                    if self.handle(req) {
                        return self.final_drain_and_flush();
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            // Serve until idle: drain whatever queued, then run one
            // batched step, repeating so fresh submits coalesce into the
            // next batch instead of waiting for the queue to empty.
            loop {
                if self.drain() {
                    return self.final_drain_and_flush();
                }
                if self.engine.pending() == 0 {
                    break;
                }
                self.step_and_deliver();
                self.sweep_ttl();
            }
            self.sweep_ttl();
        }
    }

    /// Winds the shard down: the `Shutdown` marker is the linearization
    /// point. Every request the worker dequeued *before* it was served
    /// normally, and every token the engine accepted is stepped to its
    /// result here; requests raced in *behind* the marker are rejected
    /// (opens fail, submits count as rejected, closes still honored) so
    /// intake really stops and shutdown cannot be held open by a client
    /// that keeps sending.
    fn final_drain_and_flush(&mut self) {
        loop {
            while let Ok(req) = self.rx.try_recv() {
                self.reject(req);
            }
            if self.engine.pending() == 0 {
                break;
            }
            self.step_and_deliver();
        }
        self.publish_engine_and_events();
    }

    /// One engine step plus result fan-out. The delivered-id slice
    /// borrows the engine, so it is copied into the worker's reused
    /// buffer before `deliver` re-borrows the engine mutably.
    ///
    /// Engine counters are published **between** the step and the
    /// fan-out: a client holding a result can never read engine stats
    /// predating the step that produced it (publishing once per outer
    /// loop pass, as before, let a burst of steps deliver results whose
    /// tokens the published counters had not caught up with).
    fn step_and_deliver(&mut self) {
        self.delivered.clear();
        let mut delivered = std::mem::take(&mut self.delivered);
        let step_started = Instant::now();
        delivered.extend_from_slice(self.engine.step());
        let now = Instant::now();
        if !delivered.is_empty() {
            self.shared
                .step_time
                .record(duration_nanos(now.duration_since(step_started)));
        }
        let prev = self.last_stats;
        self.publish_engine_and_events();
        let stats = *self.engine.stats();
        if self.sampler.is_enabled() && !delivered.is_empty() {
            self.record_step_spans(&prev, &stats, &delivered, step_started, now);
        }
        self.last_stats = stats;
        for &id in &delivered {
            self.deliver(id, now);
        }
        delivered.clear();
        self.delivered = delivered;
    }

    /// Emits one `BatchStep` span (plus [`Stage`] child spans) per
    /// *sampled* session this step delivered to. The step's stage laps
    /// are not re-measured — the child spans re-use the engine's own
    /// [`StageClock`](zskip_telemetry::StageClock) accounting by diffing
    /// the cumulative breakdown across the step, laid out back-to-back
    /// ending at the step's end (the laps run sequentially inside the
    /// step, with the delivery lap last). Payloads: the parent carries
    /// `a = step index`, `b = (batch size << 16) | skip permille`; each
    /// child carries `a = step index` so a reader can re-associate them.
    fn record_step_spans(
        &self,
        prev: &EngineStats,
        cur: &EngineStats,
        delivered: &[SessionId],
        started: Instant,
        ended: Instant,
    ) {
        let spans = &self.shared.spans;
        let start_ns = spans.nanos_since_origin(started);
        let end_ns = spans.nanos_since_origin(ended).max(start_ns);
        let window = end_ns - start_ns;
        let step_index = cur.steps;
        let fetched = cur.fetched_rows.saturating_sub(prev.fetched_rows);
        let total = cur.total_rows.saturating_sub(prev.total_rows);
        let skip_permille = fetched
            .saturating_mul(1000)
            .checked_div(total)
            .map_or(0, |fetched_permille| {
                1000u64.saturating_sub(fetched_permille.min(1000))
            });
        let payload = ((delivered.len() as u64) << 16) | skip_permille;
        // Per-step stage laps, scaled down proportionally in the rare
        // case clock skew makes their sum exceed the step window, so the
        // children always nest inside the parent.
        let delta = cur.stages.saturating_sub(&prev.stages);
        let lap_sum = delta.total();
        let mut laps = [0u64; Stage::COUNT];
        for (lap, stage) in laps.iter_mut().zip(Stage::ALL) {
            let d = delta.get(stage);
            *lap = if lap_sum > window {
                ((d as u128 * window as u128) / lap_sum as u128) as u64
            } else {
                d
            };
        }
        let laid: u64 = laps.iter().sum();
        for &sid in delivered {
            let key = stream_trace_key(self.shard, sid);
            if !self.sampler.sampled(key) {
                continue;
            }
            let trace = TraceId(key);
            spans.push_raw(
                trace,
                SpanKind::BatchStep,
                start_ns,
                end_ns,
                step_index,
                payload,
            );
            let mut cursor = end_ns - laid;
            for (lap, stage) in laps.iter().zip(Stage::ALL) {
                if *lap == 0 {
                    continue;
                }
                spans.push_raw(
                    trace,
                    SpanKind::Stage(stage),
                    cursor,
                    cursor + lap,
                    step_index,
                    0,
                );
                cursor += lap;
            }
        }
    }

    /// Publishes the engine's counters to the shared block and emits a
    /// `DenseFallback` event whenever the dense-step counter advanced
    /// since the last publish (detail = how many dense steps ran).
    fn publish_engine_and_events(&mut self) {
        let stats = *self.engine.stats();
        self.shared.publish_engine(&stats);
        if stats.dense_steps > self.last_dense_steps {
            self.shared.events.push(
                EventKind::DenseFallback,
                stats.dense_steps - self.last_dense_steps,
            );
            self.last_dense_steps = stats.dense_steps;
        }
    }

    /// Disposes of a request that arrived after shutdown began. Intake
    /// requests fail fast (the dropped `reply` sender surfaces as
    /// `ServerClosed` to a waiting `open`); closes are still applied so
    /// the session accounting stays truthful to the end.
    fn reject(&mut self, req: Request<M::Input>) {
        use std::sync::atomic::Ordering;
        self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        match req {
            Request::Open { .. } => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Request::Submit { .. } => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Request::SubmitMany { inputs, .. } => {
                self.shared
                    .rejected
                    .fetch_add(inputs.len() as u64, Ordering::Relaxed);
            }
            Request::Close { id } => {
                if self.engine.close_session(id).is_ok() {
                    self.remove_session(id);
                    self.shared
                        .open_sessions
                        .store(self.sessions.len(), Ordering::Relaxed);
                }
            }
            Request::Shutdown => {}
        }
    }

    /// Removes a session entry, waking its client first: a `recv_any`
    /// blocked on the entry's stream must resweep promptly to observe
    /// the dropped result channel instead of sleeping out its timeout.
    fn remove_session(&mut self, id: SessionId) {
        if let Some(entry) = self.sessions.remove(&id.0) {
            let _ = entry.wakeup.try_send(());
        }
    }

    /// Handles queued requests without blocking; `true` means shutdown.
    fn drain(&mut self) -> bool {
        loop {
            match self.rx.try_recv() {
                Ok(req) => {
                    if self.handle(req) {
                        return true;
                    }
                }
                Err(TryRecvError::Empty) => return false,
                Err(TryRecvError::Disconnected) => return true,
            }
        }
    }

    /// Applies one request; `true` means shutdown.
    fn handle(&mut self, req: Request<M::Input>) -> bool {
        use std::sync::atomic::Ordering;
        self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let now = Instant::now();
        match req {
            Request::Open {
                reply,
                results,
                wakeup,
            } => {
                let id = self.engine.open_session();
                self.sessions.insert(
                    id.0,
                    SessionEntry {
                        results,
                        wakeup,
                        last_active: now,
                        enqueued_at: std::collections::VecDeque::new(),
                    },
                );
                self.shared
                    .open_sessions
                    .store(self.sessions.len(), Ordering::Relaxed);
                self.shared.events.push(EventKind::SessionOpen, id.0);
                // The client may have died while waiting (it never saw the
                // id, so its Drop cannot close this session); the TTL
                // sweep reclaims the orphan when a TTL is configured.
                let _ = reply.send(id);
            }
            Request::Submit {
                id,
                input,
                enqueued,
            } => match self.engine.submit(id, input) {
                Ok(()) => {
                    let entry = self
                        .sessions
                        .get_mut(&id.0)
                        .expect("engine accepted a session the worker does not track");
                    entry.last_active = now;
                    entry.enqueued_at.push_back(enqueued);
                    self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .queue_wait
                        .record(duration_nanos(now.duration_since(enqueued)));
                    let key = stream_trace_key(self.shard, id);
                    if self.sampler.sampled(key) {
                        self.shared.spans.record(
                            TraceId(key),
                            SpanKind::QueueWait,
                            enqueued,
                            now,
                            1,
                            0,
                        );
                    }
                }
                Err(_) => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                }
            },
            Request::SubmitMany {
                id,
                inputs,
                enqueued,
            } => {
                let total = inputs.len();
                let mut accepted = 0usize;
                for input in inputs {
                    // A stale session fails every submit, a validation
                    // reject only the offending input — count each
                    // outcome individually so the gauges stay exact.
                    if self.engine.submit(id, input).is_ok() {
                        accepted += 1;
                    }
                }
                if accepted > 0 {
                    let entry = self
                        .sessions
                        .get_mut(&id.0)
                        .expect("engine accepted a session the worker does not track");
                    entry.last_active = now;
                    for _ in 0..accepted {
                        entry.enqueued_at.push_back(enqueued);
                    }
                    self.shared
                        .submitted
                        .fetch_add(accepted as u64, Ordering::Relaxed);
                    // One queue hop carried the whole burst; each token
                    // waited the same wall-clock, so record it per token
                    // to keep the histogram's unit (one sample = one
                    // accepted token) uniform across both submit paths.
                    let wait = duration_nanos(now.duration_since(enqueued));
                    for _ in 0..accepted {
                        self.shared.queue_wait.record(wait);
                    }
                    // One span for the whole burst; `a` carries how many
                    // tokens shared this queue hop.
                    let key = stream_trace_key(self.shard, id);
                    if self.sampler.sampled(key) {
                        self.shared.spans.record(
                            TraceId(key),
                            SpanKind::QueueWait,
                            enqueued,
                            now,
                            accepted as u64,
                            0,
                        );
                    }
                }
                if total > accepted {
                    self.shared
                        .rejected
                        .fetch_add((total - accepted) as u64, Ordering::Relaxed);
                }
            }
            Request::Close { id } => {
                if self.engine.close_session(id).is_ok() {
                    self.remove_session(id);
                    self.shared
                        .open_sessions
                        .store(self.sessions.len(), Ordering::Relaxed);
                    self.shared.events.push(EventKind::SessionClose, id.0);
                } else {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            Request::Shutdown => return true,
        }
        false
    }

    /// Forwards one freshly delivered engine result to its stream.
    fn deliver(&mut self, id: SessionId, now: Instant) {
        use std::sync::atomic::Ordering;
        use std::sync::mpsc::TrySendError;
        let result = self
            .engine
            .poll(id)
            .expect("delivered session resolves")
            .expect("delivered session has a result");
        let entry = self
            .sessions
            .get_mut(&id.0)
            .expect("delivered session is tracked");
        entry.last_active = now;
        // Pop unconditionally — the token was processed either way, and
        // the queue must stay aligned with future deliveries.
        let enqueued_at = entry.enqueued_at.pop_front();
        if let Some(enqueued) = enqueued_at {
            self.shared
                .token_latency
                .record(duration_nanos(now.duration_since(enqueued)));
        }
        let missed_deadline = match (enqueued_at, self.token_deadline) {
            (Some(enqueued), Some(deadline)) => now.duration_since(enqueued) > deadline,
            _ => false,
        };
        // Count before sending so the gauge never lags a result a client
        // has already received; un-count on the paths where the result
        // could not reach the stream.
        self.shared.delivered.fetch_add(1, Ordering::Relaxed);
        if missed_deadline {
            self.shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
            self.shared.events.push(EventKind::DeadlineMiss, id.0);
        }
        match entry.results.try_send(result) {
            Ok(()) => {
                // Wake the owning client: a `recv_any` parked on the
                // wakeup channel picks this result up immediately. Full
                // just means a wakeup is already pending.
                let _ = entry.wakeup.try_send(());
                // Delivery span: step end → result handed to the stream
                // channel (`a` = whether the deadline was met).
                let key = stream_trace_key(self.shard, id);
                if self.sampler.sampled(key) {
                    self.shared.spans.record(
                        TraceId(key),
                        SpanKind::Delivery,
                        now,
                        Instant::now(),
                        u64::from(!missed_deadline),
                        0,
                    );
                }
            }
            // The stream's result channel is full: the consumer stopped
            // recv-ing while submitting. Evict instead of buffering
            // without bound — the worker must never block on a client.
            Err(TrySendError::Full(_)) => {
                self.shared.delivered.fetch_sub(1, Ordering::Relaxed);
                if missed_deadline {
                    self.shared.deadline_misses.fetch_sub(1, Ordering::Relaxed);
                }
                let _ = self.engine.close_session(id);
                self.remove_session(id);
                self.shared.evicted_sessions.fetch_add(1, Ordering::Relaxed);
                self.shared.events.push(EventKind::SessionEvict, id.0);
                self.shared
                    .open_sessions
                    .store(self.sessions.len(), Ordering::Relaxed);
            }
            // A dropped receiver just means the client abandoned the
            // stream; the result is undeliverable but the session stays
            // live until closed or TTL-evicted.
            Err(TrySendError::Disconnected(_)) => {
                self.shared.delivered.fetch_sub(1, Ordering::Relaxed);
                if missed_deadline {
                    self.shared.deadline_misses.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Closes sessions idle past the TTL. Rate-limited to one scan per
    /// idle tick so steady load does not pay a full-table sweep per step.
    fn sweep_ttl(&mut self) {
        use std::sync::atomic::Ordering;
        let Some(ttl) = self.session_ttl else { return };
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < self.idle_tick {
            return;
        }
        self.last_sweep = now;
        let expired: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_active) > ttl)
            .map(|(&raw, _)| raw)
            .collect();
        for raw in expired {
            let _ = self.engine.close_session(SessionId(raw));
            self.remove_session(SessionId(raw));
            self.shared.evicted_sessions.fetch_add(1, Ordering::Relaxed);
            self.shared.events.push(EventKind::SessionEvict, raw);
        }
        self.shared
            .open_sessions
            .store(self.sessions.len(), Ordering::Relaxed);
    }
}
