//! Synthetic traffic driver: sustained waves of open / submit / recv /
//! close against a running [`Server`].
//!
//! Used by `examples/serve_many.rs` and the `serve` benchmark to measure
//! streams/sec and tokens/sec at a given shard count — and, since the
//! telemetry pass, the client-observed latency distribution: the driver
//! times every token from `send` to `recv`, so its percentiles include
//! queue wait, batching delay and the step itself, exactly what a real
//! caller experiences.

use crate::{ServeError, Server, StreamId};
use serde::value::Value;
use serde::Serialize;
use std::time::{Duration, Instant};
use zskip_runtime::{FrozenModel, InputSpec};
use zskip_telemetry::{HistogramSnapshot, SpanKind};
use zskip_tensor::SeedableStream;

/// Traffic shape for one [`LoadGenerator`] run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Concurrent streams held open for the whole run.
    pub streams: usize,
    /// Tokens each stream submits per round.
    pub tokens_per_round: usize,
    /// Submit/recv rounds.
    pub rounds: usize,
    /// Per-round probability a stream is closed and replaced by a fresh
    /// one (open/close churn mixed into steady traffic).
    pub churn: f64,
    /// RNG seed for tokens and churn decisions.
    pub seed: u64,
    /// Client-side per-token latency target: a token whose send→recv
    /// time exceeds this counts as a deadline miss, overall and
    /// per stream. `None` disables miss accounting.
    pub deadline: Option<Duration>,
    /// Print a percentile/stage snapshot (the server's [`ServerStats`]
    /// table plus the client-observed latency line) every this many
    /// rounds. `0` keeps the run silent.
    ///
    /// [`ServerStats`]: crate::ServerStats
    pub progress_every: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            streams: 64,
            tokens_per_round: 4,
            rounds: 4,
            churn: 0.1,
            seed: 7,
            deadline: None,
            progress_every: 0,
        }
    }
}

/// Per-stream miss accounting for one stream's lifetime (a churned-out
/// stream folds its rate into the running worst before its slot is
/// reused).
#[derive(Clone, Copy, Default)]
struct StreamTally {
    tokens: u64,
    misses: u64,
}

impl StreamTally {
    fn miss_rate(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.misses as f64 / self.tokens as f64
        }
    }
}

/// Measured outcome of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Wall-clock duration of the traffic (excluding initial opens).
    pub elapsed: Duration,
    /// Results received.
    pub tokens: u64,
    /// Streams opened (initial plus churn replacements).
    pub opened: u64,
    /// Streams closed (churn plus final teardown).
    pub closed: u64,
    /// Results received per second.
    pub tokens_per_sec: f64,
    /// Completed stream-rounds per second (`streams × rounds / elapsed`).
    pub stream_rounds_per_sec: f64,
    /// Client-observed send→recv latency of every token (queue wait +
    /// batching + step + delivery). Percentiles via
    /// [`HistogramSnapshot::p50`] … [`HistogramSnapshot::p999`].
    pub token_latency: HistogramSnapshot,
    /// Tokens later than [`LoadConfig::deadline`] (0 when no deadline).
    pub deadline_misses: u64,
    /// `deadline_misses / tokens` (0.0 when no deadline or no tokens).
    pub deadline_miss_rate: f64,
    /// The worst per-stream miss rate seen across every stream the run
    /// opened — a fairness signal: a healthy aggregate can hide one
    /// starving stream.
    pub worst_stream_miss_rate: f64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} tokens in {:.3}s  ({:.0} tokens/s, {:.0} stream-rounds/s)",
            self.tokens,
            self.elapsed.as_secs_f64(),
            self.tokens_per_sec,
            self.stream_rounds_per_sec,
        )?;
        writeln!(f, "token latency  {}", self.token_latency)?;
        write!(
            f,
            "deadline misses {} ({:.2}% overall, worst stream {:.2}%)",
            self.deadline_misses,
            self.deadline_miss_rate * 100.0,
            self.worst_stream_miss_rate * 100.0,
        )
    }
}

impl Serialize for LoadReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "elapsed_ns".to_string(),
                Value::Int(self.elapsed.as_nanos() as i128),
            ),
            ("tokens".to_string(), Value::Int(self.tokens as i128)),
            ("opened".to_string(), Value::Int(self.opened as i128)),
            ("closed".to_string(), Value::Int(self.closed as i128)),
            (
                "tokens_per_sec".to_string(),
                Value::Float(self.tokens_per_sec),
            ),
            (
                "stream_rounds_per_sec".to_string(),
                Value::Float(self.stream_rounds_per_sec),
            ),
            ("token_latency".to_string(), self.token_latency.to_value()),
            (
                "deadline_misses".to_string(),
                Value::Int(self.deadline_misses as i128),
            ),
            (
                "deadline_miss_rate".to_string(),
                Value::Float(self.deadline_miss_rate),
            ),
            (
                "worst_stream_miss_rate".to_string(),
                Value::Float(self.worst_stream_miss_rate),
            ),
        ])
    }
}

/// Drives mixed open/submit/recv/close traffic through a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct LoadGenerator {
    config: LoadConfig,
}

impl LoadGenerator {
    /// A generator producing `config`-shaped traffic.
    pub fn new(config: LoadConfig) -> Self {
        assert!(config.streams > 0, "load needs at least one stream");
        Self { config }
    }

    /// Runs the traffic against `server` and reports throughput plus the
    /// client-observed latency distribution.
    ///
    /// Works against any served model family: inputs are drawn through
    /// the server's [`InputSpec`], so the same generator drives token
    /// streams into an LM server and pixel streams into a classifier.
    ///
    /// Every round: a churn pass closes/reopens a random subset of
    /// streams, a submit wave feeds `tokens_per_round` inputs to every
    /// stream (stamping each send), and a recv wave collects every
    /// result, recording its send→recv latency and deadline verdict.
    /// With [`LoadConfig::progress_every`] set, a percentile table (the
    /// server's own stats rendering plus the client-side latency line)
    /// is printed at that round cadence. All streams are closed at the
    /// end, so back-to-back runs do not accumulate sessions.
    pub fn run<M: FrozenModel>(&self, server: &Server<M>) -> Result<LoadReport, ServeError> {
        let cfg = self.config;
        let mut client = server.client();
        let mut rng = SeedableStream::new(cfg.seed);
        let mut streams: Vec<StreamId> = Vec::with_capacity(cfg.streams);
        for _ in 0..cfg.streams {
            streams.push(client.open()?);
        }
        let (mut opened, mut closed, mut tokens) = (cfg.streams as u64, 0u64, 0u64);
        let mut latency = HistogramSnapshot::empty();
        let mut misses = 0u64;
        let mut tallies = vec![StreamTally::default(); cfg.streams];
        let mut worst_rate = 0.0f64;
        // Send stamps of one round's in-flight tokens, per stream slot
        // (recv order within a stream is submit order, so a plain queue
        // pairs each result with its send time).
        let mut sent_at: Vec<std::collections::VecDeque<Instant>> =
            vec![std::collections::VecDeque::with_capacity(cfg.tokens_per_round); cfg.streams];

        let start = Instant::now();
        for round in 0..cfg.rounds {
            for (slot, tally) in streams.iter_mut().zip(tallies.iter_mut()) {
                if rng.coin(cfg.churn) {
                    client.close(*slot)?;
                    closed += 1;
                    // The outgoing stream's miss rate is final; fold it
                    // into the worst before the slot starts fresh.
                    worst_rate = worst_rate.max(tally.miss_rate());
                    *tally = StreamTally::default();
                    *slot = client.open()?;
                    opened += 1;
                }
            }
            for (&id, stamps) in streams.iter().zip(sent_at.iter_mut()) {
                for _ in 0..cfg.tokens_per_round {
                    let input = client.input_spec().sample(&mut rng);
                    stamps.push_back(Instant::now());
                    client.send(id, input)?;
                }
            }
            for ((&id, stamps), tally) in streams
                .iter()
                .zip(sent_at.iter_mut())
                .zip(tallies.iter_mut())
            {
                for _ in 0..cfg.tokens_per_round {
                    client.recv(id)?;
                    tokens += 1;
                    tally.tokens += 1;
                    let sent = stamps
                        .pop_front()
                        .expect("one send stamp per received token");
                    let now = Instant::now();
                    let waited = now.duration_since(sent);
                    latency.record_duration(waited);
                    let missed = cfg.deadline.is_some_and(|d| waited > d);
                    if missed {
                        misses += 1;
                        tally.misses += 1;
                    }
                    // Stitch the whole send→recv life of the token into
                    // the trace as an umbrella span (no-op unless the
                    // stream is sampled): the client-observed latency the
                    // report aggregates becomes visible per token.
                    client.record_span(
                        id,
                        SpanKind::Token,
                        sent,
                        now,
                        round as u64,
                        u64::from(missed),
                    );
                }
            }
            if cfg.progress_every > 0 && (round + 1) % cfg.progress_every == 0 {
                println!(
                    "── round {}/{} ──\nclient latency {}\n{}",
                    round + 1,
                    cfg.rounds,
                    latency,
                    server.stats(),
                );
            }
        }
        let elapsed = start.elapsed();
        for id in streams {
            client.close(id)?;
            closed += 1;
        }
        for tally in &tallies {
            worst_rate = worst_rate.max(tally.miss_rate());
        }

        let secs = elapsed.as_secs_f64().max(1e-9);
        Ok(LoadReport {
            elapsed,
            tokens,
            opened,
            closed,
            tokens_per_sec: tokens as f64 / secs,
            stream_rounds_per_sec: (cfg.streams * cfg.rounds) as f64 / secs,
            token_latency: latency,
            deadline_misses: misses,
            deadline_miss_rate: if tokens == 0 {
                0.0
            } else {
                misses as f64 / tokens as f64
            },
            worst_stream_miss_rate: worst_rate,
        })
    }
}
