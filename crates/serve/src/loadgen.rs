//! Synthetic traffic driver: sustained waves of open / submit / recv /
//! close against a running [`Server`].
//!
//! Used by `examples/serve_many.rs` and the `serve` benchmark to measure
//! streams/sec and tokens/sec at a given shard count.

use crate::{ServeError, Server, StreamId};
use std::time::{Duration, Instant};
use zskip_runtime::{FrozenModel, InputSpec};
use zskip_tensor::SeedableStream;

/// Traffic shape for one [`LoadGenerator`] run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Concurrent streams held open for the whole run.
    pub streams: usize,
    /// Tokens each stream submits per round.
    pub tokens_per_round: usize,
    /// Submit/recv rounds.
    pub rounds: usize,
    /// Per-round probability a stream is closed and replaced by a fresh
    /// one (open/close churn mixed into steady traffic).
    pub churn: f64,
    /// RNG seed for tokens and churn decisions.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            streams: 64,
            tokens_per_round: 4,
            rounds: 4,
            churn: 0.1,
            seed: 7,
        }
    }
}

/// Measured outcome of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Wall-clock duration of the traffic (excluding initial opens).
    pub elapsed: Duration,
    /// Results received.
    pub tokens: u64,
    /// Streams opened (initial plus churn replacements).
    pub opened: u64,
    /// Streams closed (churn plus final teardown).
    pub closed: u64,
    /// Results received per second.
    pub tokens_per_sec: f64,
    /// Completed stream-rounds per second (`streams × rounds / elapsed`).
    pub stream_rounds_per_sec: f64,
}

/// Drives mixed open/submit/recv/close traffic through a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct LoadGenerator {
    config: LoadConfig,
}

impl LoadGenerator {
    /// A generator producing `config`-shaped traffic.
    pub fn new(config: LoadConfig) -> Self {
        assert!(config.streams > 0, "load needs at least one stream");
        Self { config }
    }

    /// Runs the traffic against `server` and reports throughput.
    ///
    /// Works against any served model family: inputs are drawn through
    /// the server's [`InputSpec`], so the same generator drives token
    /// streams into an LM server and pixel streams into a classifier.
    ///
    /// Every round: a churn pass closes/reopens a random subset of
    /// streams, a submit wave feeds `tokens_per_round` inputs to every
    /// stream, and a recv wave collects every result. All streams are
    /// closed at the end, so back-to-back runs do not accumulate
    /// sessions.
    pub fn run<M: FrozenModel>(&self, server: &Server<M>) -> Result<LoadReport, ServeError> {
        let cfg = self.config;
        let mut client = server.client();
        let mut rng = SeedableStream::new(cfg.seed);
        let mut streams: Vec<StreamId> = Vec::with_capacity(cfg.streams);
        for _ in 0..cfg.streams {
            streams.push(client.open()?);
        }
        let (mut opened, mut closed, mut tokens) = (cfg.streams as u64, 0u64, 0u64);

        let start = Instant::now();
        for _ in 0..cfg.rounds {
            for slot in streams.iter_mut() {
                if rng.coin(cfg.churn) {
                    client.close(*slot)?;
                    closed += 1;
                    *slot = client.open()?;
                    opened += 1;
                }
            }
            for &id in &streams {
                for _ in 0..cfg.tokens_per_round {
                    let input = client.input_spec().sample(&mut rng);
                    client.send(id, input)?;
                }
            }
            for &id in &streams {
                for _ in 0..cfg.tokens_per_round {
                    client.recv(id)?;
                    tokens += 1;
                }
            }
        }
        let elapsed = start.elapsed();
        for id in streams {
            client.close(id)?;
            closed += 1;
        }

        let secs = elapsed.as_secs_f64().max(1e-9);
        Ok(LoadReport {
            elapsed,
            tokens,
            opened,
            closed,
            tokens_per_sec: tokens as f64 / secs,
            stream_rounds_per_sec: (cfg.streams * cfg.rounds) as f64 / secs,
        })
    }
}
