//! The blocking client handle: open / send / recv / recv_any / close.

use crate::error::ServeError;
use crate::server::{Request, ShardHandle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zskip_runtime::{EngineError, FrozenCharLm, FrozenModel, InputSpec, SessionId, StepResult};
use zskip_telemetry::{EventKind, SpanKind, TraceId};

/// Handle to one open stream: the owning shard plus the shard engine's
/// generational [`SessionId`]. Routing derives from the id itself, so a
/// handle to a closed stream keeps failing instead of aliasing a new one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    pub(crate) shard: u32,
    pub(crate) session: SessionId,
}

/// Folds a stream's shard and generational session id into the u64 key
/// the [`zskip_telemetry::TraceSampler`] hashes. Both halves of the
/// stack derive it independently — the client from its [`StreamId`],
/// the shard worker from its own index plus the engine's session id —
/// so they always agree on which streams are sampled.
pub(crate) fn stream_trace_key(shard: u32, session: SessionId) -> u64 {
    (shard as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(session.0)
}

impl StreamId {
    /// The shard this stream lives on.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// The generational per-shard session id.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// This stream's deterministic trace-sampling key.
    pub fn trace_key(&self) -> u64 {
        stream_trace_key(self.shard, self.session)
    }

    /// Reassembles a stream id from its two wire-format halves — the
    /// `(shard, session)` pair `zskip-wire` sends over the socket. A
    /// forged pair is harmless: ids only resolve through the client
    /// map that opened them, so an unknown reassembled id fails with
    /// `UnknownStream` exactly like a stale local one.
    pub fn from_wire(shard: u32, session: u64) -> Self {
        Self {
            shard,
            session: SessionId(session),
        }
    }
}

/// Backstop wait slice for `recv_any` once every stream came up empty.
/// The normal wake path is the client's wakeup channel — the worker
/// signals it on every delivery, so idle receive latency is the thread
/// wake itself (~0, was a 200 µs park-and-sweep). The backstop only
/// bounds how long a disconnection that nobody can signal anymore (the
/// server shutting down mid-wait) goes unnoticed.
const RECV_ANY_BACKSTOP: Duration = Duration::from_millis(5);

/// A blocking client of a [`crate::Server`], generic over the served
/// model family (the input type follows: token ids for the LM families,
/// pixels for the classifier).
///
/// Each open stream owns a private result channel; `recv` pops results in
/// submit order, [`Client::recv_any`] pops the next result from *any*
/// stream. Clients are independent — create one per driving thread via
/// [`crate::Server::client`].
pub struct Client<M: FrozenModel = FrozenCharLm> {
    shards: Arc<Vec<ShardHandle<M::Input>>>,
    open_counter: Arc<AtomicU64>,
    spec: M::Spec,
    result_capacity: usize,
    streams: HashMap<StreamId, Receiver<StepResult<M::Input>>>,
    recv_timeout: Option<Duration>,
    /// Rotating fairness cursor for [`Client::recv_any`].
    recv_any_cursor: usize,
    /// The client half of the wakeup channel: every stream this client
    /// opens registers a sender clone with its worker, which signals it
    /// on delivery (and before evicting the stream), so a blocked
    /// [`Client::recv_any`] wakes the moment a result exists.
    wakeup_rx: Receiver<()>,
    /// The sender template cloned into each `Open` request (capacity 1 —
    /// a pending wakeup token is binary).
    wakeup_tx: SyncSender<()>,
    /// Copy of the server's deterministic stream sampler, so the client
    /// stitches its side of a sampled stream into the same trace the
    /// worker records.
    sampler: zskip_telemetry::TraceSampler,
}

impl<M: FrozenModel> Client<M> {
    pub(crate) fn new(
        shards: Arc<Vec<ShardHandle<M::Input>>>,
        open_counter: Arc<AtomicU64>,
        spec: M::Spec,
        result_capacity: usize,
        sampler: zskip_telemetry::TraceSampler,
    ) -> Self {
        let (wakeup_tx, wakeup_rx) = mpsc::sync_channel(1);
        Self {
            shards,
            open_counter,
            spec,
            result_capacity,
            streams: HashMap::new(),
            recv_timeout: None,
            recv_any_cursor: 0,
            wakeup_rx,
            wakeup_tx,
            sampler,
        }
    }

    /// Sets a timeout for blocking [`Client::recv`] calls
    /// ([`ServeError::RecvTimeout`] once exceeded).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// The served family's input-domain descriptor (for validation and
    /// load-generation sampling — no weights attached).
    pub fn input_spec(&self) -> M::Spec {
        self.spec
    }

    /// Streams this client currently holds open.
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }

    /// The ids of every stream this client holds open, sorted. Lets a
    /// front-end that multiplexes many streams over one client (the
    /// wire pump) diff the set across a [`Client::recv_any`] call and
    /// learn *which* streams were evicted mid-wait.
    pub fn open_stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Opens a new stream. Placement hashes the global open ticket onto a
    /// shard; the returned [`StreamId`] then pins the stream to that
    /// shard's engine for its whole life. Blocks while the shard's queue
    /// is full.
    pub fn open(&mut self) -> Result<StreamId, ServeError> {
        let ticket = self.open_counter.fetch_add(1, Ordering::Relaxed);
        let shard = (zskip_tensor::rng::mix64(ticket) % self.shards.len() as u64) as u32;
        let (reply_tx, reply_rx) = mpsc::channel();
        // Bounded: a stream that submits without recv-ing fills this and
        // is evicted rather than buffering results without limit.
        let (result_tx, result_rx) = mpsc::sync_channel(self.result_capacity);
        self.send_request(
            shard,
            Request::Open {
                reply: reply_tx,
                results: result_tx,
                wakeup: self.wakeup_tx.clone(),
            },
            true,
        )?;
        let session = reply_rx.recv().map_err(|_| ServeError::ServerClosed)?;
        let id = StreamId { shard, session };
        self.streams.insert(id, result_rx);
        Ok(id)
    }

    /// Feeds one input to a stream, blocking while the shard's queue is
    /// full (backpressure).
    pub fn send(&mut self, id: StreamId, input: M::Input) -> Result<(), ServeError> {
        self.submit(id, input, true)
    }

    /// Non-blocking [`Client::send`]: fails with
    /// [`ServeError::Backpressure`] instead of stalling when the shard's
    /// queue is full.
    pub fn try_send(&mut self, id: StreamId, input: M::Input) -> Result<(), ServeError> {
        self.submit(id, input, false)
    }

    /// Bulk submit: feeds every input of `inputs` to a stream in **one**
    /// queue request, in order, blocking while the shard's queue is full.
    /// A long scan — the classifier's 784-pixel MNIST stream — pays one
    /// channel round-trip instead of one per input, and the results come
    /// back exactly as if each input had been [`Client::send`]-ed
    /// individually (the engine queues per-session FIFO either way; the
    /// determinism test in `tests/` pins the two paths bit-for-bit).
    ///
    /// Every input is validated up front; on a validation failure
    /// nothing is submitted. An empty slice is a no-op.
    pub fn send_all(&mut self, id: StreamId, inputs: &[M::Input]) -> Result<(), ServeError> {
        if !self.streams.contains_key(&id) {
            return Err(ServeError::UnknownStream);
        }
        for input in inputs {
            if !self.spec.validate(input) {
                return Err(EngineError::InvalidInput.into());
            }
        }
        if inputs.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let outcome = self.send_request(
            id.shard,
            Request::SubmitMany {
                id: id.session,
                inputs: inputs.to_vec(),
                enqueued: started,
            },
            true,
        );
        if outcome.is_ok() && self.is_traced(id) {
            self.record_span(
                id,
                SpanKind::ClientSubmit,
                started,
                Instant::now(),
                inputs.len() as u64,
                0,
            );
        }
        outcome
    }

    fn submit(&mut self, id: StreamId, input: M::Input, blocking: bool) -> Result<(), ServeError> {
        if !self.streams.contains_key(&id) {
            return Err(ServeError::UnknownStream);
        }
        if !self.spec.validate(&input) {
            return Err(EngineError::InvalidInput.into());
        }
        let started = Instant::now();
        let outcome = self.send_request(
            id.shard,
            Request::Submit {
                id: id.session,
                input,
                enqueued: started,
            },
            blocking,
        );
        if outcome.is_ok() && self.is_traced(id) {
            self.record_span(id, SpanKind::ClientSubmit, started, Instant::now(), 1, 0);
        }
        outcome
    }

    /// Pops the oldest undelivered result of a stream, blocking until one
    /// arrives (bounded by the receive timeout, when set).
    pub fn recv(&mut self, id: StreamId) -> Result<StepResult<M::Input>, ServeError> {
        let rx = self.streams.get(&id).ok_or(ServeError::UnknownStream)?;
        let traced = self.is_traced(id);
        let started = traced.then(Instant::now);
        let outcome = match self.recv_timeout {
            None => rx.recv().map_err(|_| ServeError::Evicted),
            Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => ServeError::RecvTimeout,
                RecvTimeoutError::Disconnected => ServeError::Evicted,
            }),
        };
        if matches!(outcome, Err(ServeError::Evicted)) {
            // The worker dropped our channel: the session is gone.
            self.streams.remove(&id);
        }
        if outcome.is_ok() {
            if let Some(started) = started {
                self.record_span(id, SpanKind::ClientRecv, started, Instant::now(), 1, 0);
            }
        }
        outcome
    }

    /// Select-style receive: blocks until **any** of this client's open
    /// streams has a result and returns `(stream, result)` — so one
    /// driver thread can own many streams without round-robin `recv`
    /// polling of its own.
    ///
    /// Blocking is notification-driven: when a sweep over the streams
    /// comes up empty, the call parks on the client's wakeup channel,
    /// which every owning worker signals the moment it delivers a result
    /// (or evicts one of this client's streams) — idle receive latency
    /// is the thread wake itself, not a polling interval. A pending
    /// wakeup from an already-consumed result just costs one extra
    /// sweep.
    ///
    /// Fairness: consecutive calls rotate the stream checked first, so a
    /// chatty stream cannot starve the others. Streams found evicted
    /// server-side during the wait are dropped from the client (exactly
    /// as [`Client::recv`] does) and the wait continues on the rest;
    /// subsequent calls for the dropped id report
    /// [`ServeError::UnknownStream`].
    ///
    /// Errors: [`ServeError::UnknownStream`] when no stream is open
    /// (including when every stream was evicted mid-wait),
    /// [`ServeError::RecvTimeout`] when `timeout` elapses first.
    pub fn recv_any(
        &mut self,
        timeout: Duration,
    ) -> Result<(StreamId, StepResult<M::Input>), ServeError> {
        let deadline = Instant::now() + timeout;
        // Stable rotated order, built once per call: StreamId is Ord, so
        // the sweep order is deterministic and the cursor rotates who
        // goes first on consecutive calls. The set only shrinks on
        // eviction, so the list is rebuilt only then — not per sweep
        // (a client may own thousands of streams).
        let mut ids: Vec<StreamId> = self.streams.keys().copied().collect();
        if !ids.is_empty() {
            ids.sort_unstable();
            let start = self.recv_any_cursor % ids.len();
            ids.rotate_left(start);
            self.recv_any_cursor = self.recv_any_cursor.wrapping_add(1);
        }
        loop {
            if ids.is_empty() {
                return Err(ServeError::UnknownStream);
            }
            let mut evicted = false;
            let mut hit = None;
            for &id in &ids {
                match self.streams[&id].try_recv() {
                    Ok(result) => {
                        hit = Some((id, result));
                        break;
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => {
                        self.streams.remove(&id);
                        evicted = true;
                    }
                }
            }
            if evicted {
                ids.retain(|id| self.streams.contains_key(id));
                // Resweep immediately: the set changed, and if it is now
                // empty the caller must hear UnknownStream, not block.
                continue;
            }
            if let Some(hit) = hit {
                return Ok(hit);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::RecvTimeout);
            }
            // Park until a worker signals a delivery or eviction. The
            // backstop slice exists only because the client itself holds
            // a sender (the clone template), so a server that dies
            // without signalling cannot disconnect the channel — the
            // periodic resweep notices the dropped result channels
            // instead. A wakeup delivered between our sweep and this
            // park is already buffered (capacity 1), so no result can
            // slip through the gap.
            let wait = RECV_ANY_BACKSTOP.min(deadline.saturating_duration_since(now));
            match self.wakeup_rx.recv_timeout(wait) {
                Ok(()) | Err(RecvTimeoutError::Timeout) => {}
                // Unreachable while `wakeup_tx` lives in self; resweep.
                Err(RecvTimeoutError::Disconnected) => {}
            }
        }
    }

    /// Closes a stream: undelivered results are dropped and the shard
    /// reclaims the session slot.
    pub fn close(&mut self, id: StreamId) -> Result<(), ServeError> {
        self.streams.remove(&id).ok_or(ServeError::UnknownStream)?;
        self.send_request(id.shard, Request::Close { id: id.session }, true)
    }

    /// Whether a stream is being traced under the server's deterministic
    /// sampler. `false` for every stream when tracing is disabled
    /// (sampling rate 0 or `ZSKIP_TRACE=0`).
    pub fn is_traced(&self, id: StreamId) -> bool {
        self.sampler.sampled(id.trace_key())
    }

    /// Records a custom client-side span onto a traced stream's shard
    /// ring — a no-op when the stream is not sampled. The load generator
    /// uses this to stitch its submit→recv umbrella spans into the same
    /// trace the worker records; callers may attach their own
    /// [`SpanKind::Token`] spans the same way.
    pub fn record_span(
        &self,
        id: StreamId,
        kind: SpanKind,
        started: Instant,
        ended: Instant,
        a: u64,
        b: u64,
    ) {
        let key = id.trace_key();
        if self.sampler.sampled(key) {
            self.shards[id.shard as usize].shared.spans.record(
                TraceId(key),
                kind,
                started,
                ended,
                a,
                b,
            );
        }
    }

    fn send_request(
        &self,
        shard: u32,
        request: Request<M::Input>,
        blocking: bool,
    ) -> Result<(), ServeError> {
        let handle = &self.shards[shard as usize];
        handle.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        let sent = if blocking {
            // Probe with `try_send` first so the stall is observable:
            // `Full` means this sender is about to park on backpressure,
            // which is exactly what the event records. The extra probe
            // costs one channel CAS on the uncontended path.
            match handle.tx.try_send(request) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(request)) => {
                    handle
                        .shared
                        .events
                        .push(EventKind::BackpressureStall, request.session_detail());
                    // The stall itself becomes a span on sampled streams:
                    // the time this sender spent parked on the full queue
                    // shows up in the trace instead of hiding inside the
                    // submit latency.
                    let traced_session = match &request {
                        Request::Submit { id, .. }
                        | Request::SubmitMany { id, .. }
                        | Request::Close { id } => Some(*id),
                        Request::Open { .. } | Request::Shutdown => None,
                    };
                    let stalled = Instant::now();
                    let outcome = handle
                        .tx
                        .send(request)
                        .map_err(|_| ServeError::ServerClosed);
                    if outcome.is_ok() {
                        if let Some(session) = traced_session {
                            let key = stream_trace_key(shard, session);
                            if self.sampler.sampled(key) {
                                handle.shared.spans.record(
                                    TraceId(key),
                                    SpanKind::BackpressureStall,
                                    stalled,
                                    Instant::now(),
                                    0,
                                    0,
                                );
                            }
                        }
                    }
                    outcome
                }
                Err(TrySendError::Disconnected(_)) => Err(ServeError::ServerClosed),
            }
        } else {
            handle.tx.try_send(request).map_err(|e| match e {
                TrySendError::Full(_) => ServeError::Backpressure,
                TrySendError::Disconnected(_) => ServeError::ServerClosed,
            })
        };
        if sent.is_err() {
            handle.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }
}

impl<M: FrozenModel> Drop for Client<M> {
    /// Closes every stream this client still holds, so dropping a client
    /// (including via an early `?` return) cannot leak sessions in the
    /// shard engines — eviction by TTL is a safety net, not the cleanup
    /// path.
    fn drop(&mut self) {
        let ids: Vec<StreamId> = self.streams.keys().copied().collect();
        self.streams.clear();
        for id in ids {
            // Best-effort: the server may already be gone.
            let _ = self.send_request(id.shard, Request::Close { id: id.session }, true);
        }
    }
}
