//! The blocking client handle: open / send / recv / close.

use crate::error::ServeError;
use crate::server::{Request, ShardHandle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zskip_runtime::{EngineError, SessionId, StepResult};

/// Handle to one open stream: the owning shard plus the shard engine's
/// generational [`SessionId`]. Routing derives from the id itself, so a
/// handle to a closed stream keeps failing instead of aliasing a new one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    pub(crate) shard: u32,
    pub(crate) session: SessionId,
}

impl StreamId {
    /// The shard this stream lives on.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// The generational per-shard session id.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

/// A blocking client of a [`crate::Server`].
///
/// Each open stream owns a private result channel; `recv` pops results in
/// submit order. Clients are independent — create one per driving thread
/// via [`crate::Server::client`].
pub struct Client {
    shards: Arc<Vec<ShardHandle>>,
    open_counter: Arc<AtomicU64>,
    vocab: usize,
    result_capacity: usize,
    streams: HashMap<StreamId, Receiver<StepResult>>,
    recv_timeout: Option<Duration>,
}

impl Client {
    pub(crate) fn new(
        shards: Arc<Vec<ShardHandle>>,
        open_counter: Arc<AtomicU64>,
        vocab: usize,
        result_capacity: usize,
    ) -> Self {
        Self {
            shards,
            open_counter,
            vocab,
            result_capacity,
            streams: HashMap::new(),
            recv_timeout: None,
        }
    }

    /// Sets a timeout for blocking [`Client::recv`] calls
    /// ([`ServeError::RecvTimeout`] once exceeded).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// The served model's vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Streams this client currently holds open.
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }

    /// Opens a new stream. Placement hashes the global open ticket onto a
    /// shard; the returned [`StreamId`] then pins the stream to that
    /// shard's engine for its whole life. Blocks while the shard's queue
    /// is full.
    pub fn open(&mut self) -> Result<StreamId, ServeError> {
        let ticket = self.open_counter.fetch_add(1, Ordering::Relaxed);
        let shard = (zskip_tensor::rng::mix64(ticket) % self.shards.len() as u64) as u32;
        let (reply_tx, reply_rx) = mpsc::channel();
        // Bounded: a stream that submits without recv-ing fills this and
        // is evicted rather than buffering results without limit.
        let (result_tx, result_rx) = mpsc::sync_channel(self.result_capacity);
        self.send_request(
            shard,
            Request::Open {
                reply: reply_tx,
                results: result_tx,
            },
            true,
        )?;
        let session = reply_rx.recv().map_err(|_| ServeError::ServerClosed)?;
        let id = StreamId { shard, session };
        self.streams.insert(id, result_rx);
        Ok(id)
    }

    /// Feeds one token to a stream, blocking while the shard's queue is
    /// full (backpressure).
    pub fn send(&mut self, id: StreamId, token: usize) -> Result<(), ServeError> {
        self.submit(id, token, true)
    }

    /// Non-blocking [`Client::send`]: fails with
    /// [`ServeError::Backpressure`] instead of stalling when the shard's
    /// queue is full.
    pub fn try_send(&mut self, id: StreamId, token: usize) -> Result<(), ServeError> {
        self.submit(id, token, false)
    }

    fn submit(&mut self, id: StreamId, token: usize, blocking: bool) -> Result<(), ServeError> {
        if !self.streams.contains_key(&id) {
            return Err(ServeError::UnknownStream);
        }
        if token >= self.vocab {
            return Err(EngineError::TokenOutOfVocab.into());
        }
        self.send_request(
            id.shard,
            Request::Submit {
                id: id.session,
                token,
                enqueued: Instant::now(),
            },
            blocking,
        )
    }

    /// Pops the oldest undelivered result of a stream, blocking until one
    /// arrives (bounded by the receive timeout, when set).
    pub fn recv(&mut self, id: StreamId) -> Result<StepResult, ServeError> {
        let rx = self.streams.get(&id).ok_or(ServeError::UnknownStream)?;
        let outcome = match self.recv_timeout {
            None => rx.recv().map_err(|_| ServeError::Evicted),
            Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => ServeError::RecvTimeout,
                RecvTimeoutError::Disconnected => ServeError::Evicted,
            }),
        };
        if matches!(outcome, Err(ServeError::Evicted)) {
            // The worker dropped our channel: the session is gone.
            self.streams.remove(&id);
        }
        outcome
    }

    /// Closes a stream: undelivered results are dropped and the shard
    /// reclaims the session slot.
    pub fn close(&mut self, id: StreamId) -> Result<(), ServeError> {
        self.streams.remove(&id).ok_or(ServeError::UnknownStream)?;
        self.send_request(id.shard, Request::Close { id: id.session }, true)
    }

    fn send_request(&self, shard: u32, request: Request, blocking: bool) -> Result<(), ServeError> {
        let handle = &self.shards[shard as usize];
        handle.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        let sent = if blocking {
            handle
                .tx
                .send(request)
                .map_err(|_| ServeError::ServerClosed)
        } else {
            handle.tx.try_send(request).map_err(|e| match e {
                TrySendError::Full(_) => ServeError::Backpressure,
                TrySendError::Disconnected(_) => ServeError::ServerClosed,
            })
        };
        if sent.is_err() {
            handle.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }
}

impl Drop for Client {
    /// Closes every stream this client still holds, so dropping a client
    /// (including via an early `?` return) cannot leak sessions in the
    /// shard engines — eviction by TTL is a safety net, not the cleanup
    /// path.
    fn drop(&mut self) {
        let ids: Vec<StreamId> = self.streams.keys().copied().collect();
        self.streams.clear();
        for id in ids {
            // Best-effort: the server may already be gone.
            let _ = self.send_request(id.shard, Request::Close { id: id.session }, true);
        }
    }
}
