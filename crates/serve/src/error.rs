//! Serving-layer errors.
//!
//! [`ServeError`] implements [`std::error::Error`] (as does the engine's
//! [`EngineError`]), so application code can propagate either with `?`
//! into a `Box<dyn Error>`:
//!
//! ```
//! use zskip_serve::{ServeConfig, Server};
//! use zskip_runtime::FrozenCharLm;
//!
//! fn serve_one() -> Result<usize, Box<dyn std::error::Error>> {
//!     let server = Server::start(
//!         FrozenCharLm::random(16, 8, 1),
//!         ServeConfig::for_threshold(0.2).with_shards(1),
//!     );
//!     let mut client = server.client();
//!     let stream = client.open()?;
//!     client.send(stream, 3)?;
//!     let result = client.recv(stream)?;
//!     client.close(stream)?;
//!     Ok(result.argmax)
//! }
//! assert!(serve_one().is_ok());
//! ```

use zskip_runtime::EngineError;

/// Errors from the sharded serving API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// An engine-level error surfaced through the serving layer (e.g. a
    /// token outside the model's vocabulary).
    Engine(EngineError),
    /// The stream id is not managed by this client (never opened here,
    /// or already closed).
    UnknownStream,
    /// `try_send` found the shard's bounded request queue full — the
    /// backpressure signal. Retry later or use the blocking `send`.
    Backpressure,
    /// The server has shut down; no further requests can be delivered.
    ServerClosed,
    /// The stream's session is gone server-side — evicted idle past the
    /// configured TTL, evicted as a slow consumer (its bounded result
    /// channel filled), or the server shut down — reported once all
    /// buffered results have been drained. (Tokens the engine accepted
    /// before shutdown are always served first; see
    /// `Server::shutdown`.)
    Evicted,
    /// A blocking `recv` exceeded the client's receive timeout.
    RecvTimeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownStream => write!(f, "unknown or closed stream id"),
            ServeError::Backpressure => write!(f, "shard request queue full (backpressure)"),
            ServeError::ServerClosed => write!(f, "server has shut down"),
            ServeError::Evicted => write!(
                f,
                "session gone server-side (evicted for idle TTL or a full \
                 result channel, or the server shut down)"
            ),
            ServeError::RecvTimeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable_and_source_chains() {
        use std::error::Error;
        let e = ServeError::from(EngineError::InvalidInput);
        assert!(e.to_string().contains("vocabulary"));
        assert!(e.source().is_some());
        assert!(ServeError::Backpressure.source().is_none());
        // `?` into a boxed error works for both error types.
        fn engine_level() -> Result<(), Box<dyn Error>> {
            Err(EngineError::UnknownSession)?
        }
        fn serve_level() -> Result<(), Box<dyn Error>> {
            Err(ServeError::Evicted)?
        }
        assert!(engine_level().is_err());
        assert!(serve_level().is_err());
    }
}
