//! Cross-shard serving statistics.
//!
//! Each worker publishes its counters into a crate-internal
//! `ShardShared` block of atomics; [`crate::Server::stats`] snapshots
//! every shard into a [`ServerStats`] aggregate without stopping the
//! workers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use zskip_runtime::EngineStats;

/// Lock-free counters one worker thread publishes (crate-internal).
#[derive(Default)]
pub(crate) struct ShardShared {
    /// Requests in flight toward the shard: sitting in its bounded queue
    /// *plus* blocking `send`s stalled on a full queue (can exceed the
    /// queue capacity — that excess is the backpressure signal).
    pub queue_depth: AtomicUsize,
    /// Sessions currently open on the shard's engine.
    pub open_sessions: AtomicUsize,
    /// Tokens accepted into the engine.
    pub submitted: AtomicU64,
    /// Results delivered to client streams.
    pub delivered: AtomicU64,
    /// Deliveries that exceeded the configured per-token deadline.
    pub deadline_misses: AtomicU64,
    /// Sessions closed server-side after idling past the TTL.
    pub evicted_sessions: AtomicU64,
    /// Requests that addressed an unknown/closed session.
    pub rejected: AtomicU64,
    // Mirror of the shard engine's `EngineStats`.
    pub steps: AtomicU64,
    pub tokens: AtomicU64,
    pub sparse_steps: AtomicU64,
    pub dense_steps: AtomicU64,
    pub fetched_rows: AtomicU64,
    pub total_rows: AtomicU64,
    pub anchor_columns: AtomicU64,
}

impl ShardShared {
    pub(crate) fn publish_engine(&self, s: &EngineStats) {
        self.steps.store(s.steps, Ordering::Relaxed);
        self.tokens.store(s.tokens, Ordering::Relaxed);
        self.sparse_steps.store(s.sparse_steps, Ordering::Relaxed);
        self.dense_steps.store(s.dense_steps, Ordering::Relaxed);
        self.fetched_rows.store(s.fetched_rows, Ordering::Relaxed);
        self.total_rows.store(s.total_rows, Ordering::Relaxed);
        self.anchor_columns
            .store(s.anchor_columns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            open_sessions: self.open_sessions.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            evicted_sessions: self.evicted_sessions.load(Ordering::Relaxed),
            rejected_requests: self.rejected.load(Ordering::Relaxed),
            engine: EngineStats {
                steps: self.steps.load(Ordering::Relaxed),
                tokens: self.tokens.load(Ordering::Relaxed),
                sparse_steps: self.sparse_steps.load(Ordering::Relaxed),
                dense_steps: self.dense_steps.load(Ordering::Relaxed),
                fetched_rows: self.fetched_rows.load(Ordering::Relaxed),
                total_rows: self.total_rows.load(Ordering::Relaxed),
                anchor_columns: self.anchor_columns.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time snapshot of one shard's serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Requests in flight toward the shard: queued plus blocking sends
    /// stalled on a full queue (values above the queue capacity mean
    /// producers are experiencing backpressure).
    pub queue_depth: usize,
    /// Sessions open on the shard's engine.
    pub open_sessions: usize,
    /// Tokens accepted into the engine.
    pub submitted: u64,
    /// Results delivered to client streams.
    pub delivered: u64,
    /// Deliveries later than the configured per-token deadline.
    pub deadline_misses: u64,
    /// Sessions evicted after idling past the TTL.
    pub evicted_sessions: u64,
    /// Requests addressed to unknown/closed sessions.
    pub rejected_requests: u64,
    /// The shard engine's own step/skip accounting.
    pub engine: EngineStats,
}

/// Aggregate statistics across every shard of a [`crate::Server`].
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    /// Requests in flight toward all shards (queued + stalled sends).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Sessions open across all shards.
    pub fn open_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.open_sessions).sum()
    }

    /// Tokens accepted across all shards.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.submitted).sum()
    }

    /// Results delivered across all shards.
    pub fn delivered(&self) -> u64 {
        self.shards.iter().map(|s| s.delivered).sum()
    }

    /// Deadline misses across all shards.
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_misses).sum()
    }

    /// TTL evictions across all shards.
    pub fn evicted_sessions(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_sessions).sum()
    }

    /// Batched engine steps across all shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.steps).sum()
    }

    /// Fraction of recurrent weight fetches skipped, aggregated over all
    /// shard engines.
    pub fn skip_fraction(&self) -> f64 {
        let fetched: u64 = self.shards.iter().map(|s| s.engine.fetched_rows).sum();
        let total: u64 = self.shards.iter().map(|s| s.engine.total_rows).sum();
        if total == 0 {
            0.0
        } else {
            1.0 - fetched as f64 / total as f64
        }
    }
}
