//! Cross-shard serving statistics and telemetry.
//!
//! Each worker publishes its counters, latency histograms and events
//! into a crate-internal `ShardShared` block; [`crate::Server::stats`]
//! snapshots every shard into a [`ServerStats`] aggregate and
//! [`crate::Server::drain_events`] drains the per-shard event rings —
//! both without stopping the workers.
//!
//! # Consistency model
//!
//! Everything here is observability, not coordination: every counter,
//! histogram bucket and stage cell is read and written with `Relaxed`
//! atomics, **independently**. A snapshot taken while workers are
//! running is not a linearizable cut — the values may mutually tear
//! (e.g. `delivered` already counting a token whose `submitted`
//! increment the snapshot missed, or a histogram count disagreeing with
//! the matching counter by in-flight records). Each individual value is
//! exact and monotone; only cross-value invariants may be momentarily
//! off. Quiesce the workers first if an exact cut matters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use zskip_runtime::{EngineStats, Stage, StageBreakdown};
use zskip_telemetry::{Event, EventRing, HistogramSnapshot, LatencyHistogram, SpanRing};

use serde::value::Value;
use serde::Serialize;

/// Lock-free telemetry block one worker thread publishes
/// (crate-internal).
pub(crate) struct ShardShared {
    /// Requests in flight toward the shard: sitting in its bounded queue
    /// *plus* blocking `send`s stalled on a full queue (can exceed the
    /// queue capacity — that excess is the backpressure signal).
    pub queue_depth: AtomicUsize,
    /// Sessions currently open on the shard's engine.
    pub open_sessions: AtomicUsize,
    /// Tokens accepted into the engine.
    pub submitted: AtomicU64,
    /// Results delivered to client streams.
    pub delivered: AtomicU64,
    /// Deliveries that exceeded the configured per-token deadline.
    pub deadline_misses: AtomicU64,
    /// Sessions closed server-side after idling past the TTL.
    pub evicted_sessions: AtomicU64,
    /// Requests that addressed an unknown/closed session.
    pub rejected: AtomicU64,
    // Mirror of the shard engine's `EngineStats`.
    pub steps: AtomicU64,
    pub tokens: AtomicU64,
    pub sparse_steps: AtomicU64,
    pub dense_steps: AtomicU64,
    pub fetched_rows: AtomicU64,
    pub total_rows: AtomicU64,
    pub anchor_columns: AtomicU64,
    /// Mirror of the engine's cumulative stage breakdown, one cell per
    /// [`Stage`] in `Stage::ALL` order.
    pub stage_nanos: [AtomicU64; Stage::COUNT],
    /// Submit-to-dequeue wait of accepted tokens (time spent in the
    /// shard queue, including any blocking-send stall).
    pub queue_wait: LatencyHistogram,
    /// Wall-clock of each batched engine step.
    pub step_time: LatencyHistogram,
    /// End-to-end submit-to-delivery latency of each token.
    pub token_latency: LatencyHistogram,
    /// Bounded log of discrete shard events (open/close/evict, deadline
    /// miss, dense fallback, backpressure stall).
    pub events: EventRing,
    /// Bounded ring of sampled trace spans (client submit, queue wait,
    /// batch step + stage children, delivery, client recv).
    pub spans: SpanRing,
}

impl ShardShared {
    /// A zeroed block whose event ring holds `event_capacity` entries
    /// and whose span ring holds `span_capacity`. Both rings stamp
    /// timestamps relative to `origin`, which [`crate::Server::start`]
    /// shares across every shard so drained events and spans from
    /// different shards are mutually ordered.
    pub(crate) fn new(event_capacity: usize, span_capacity: usize, origin: Instant) -> Self {
        Self {
            queue_depth: AtomicUsize::new(0),
            open_sessions: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            evicted_sessions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            tokens: AtomicU64::new(0),
            sparse_steps: AtomicU64::new(0),
            dense_steps: AtomicU64::new(0),
            fetched_rows: AtomicU64::new(0),
            total_rows: AtomicU64::new(0),
            anchor_columns: AtomicU64::new(0),
            stage_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_wait: LatencyHistogram::new(),
            step_time: LatencyHistogram::new(),
            token_latency: LatencyHistogram::new(),
            events: EventRing::with_origin(event_capacity, origin),
            spans: SpanRing::new(span_capacity, origin),
        }
    }

    pub(crate) fn publish_engine(&self, s: &EngineStats) {
        self.steps.store(s.steps, Ordering::Relaxed);
        self.tokens.store(s.tokens, Ordering::Relaxed);
        self.sparse_steps.store(s.sparse_steps, Ordering::Relaxed);
        self.dense_steps.store(s.dense_steps, Ordering::Relaxed);
        self.fetched_rows.store(s.fetched_rows, Ordering::Relaxed);
        self.total_rows.store(s.total_rows, Ordering::Relaxed);
        self.anchor_columns
            .store(s.anchor_columns, Ordering::Relaxed);
        for (cell, nanos) in self.stage_nanos.iter().zip(s.stages.as_nanos()) {
            cell.store(nanos, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            open_sessions: self.open_sessions.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            evicted_sessions: self.evicted_sessions.load(Ordering::Relaxed),
            rejected_requests: self.rejected.load(Ordering::Relaxed),
            dropped_events: self.events.dropped(),
            dropped_spans: self.spans.dropped(),
            engine: EngineStats {
                steps: self.steps.load(Ordering::Relaxed),
                tokens: self.tokens.load(Ordering::Relaxed),
                sparse_steps: self.sparse_steps.load(Ordering::Relaxed),
                dense_steps: self.dense_steps.load(Ordering::Relaxed),
                fetched_rows: self.fetched_rows.load(Ordering::Relaxed),
                total_rows: self.total_rows.load(Ordering::Relaxed),
                anchor_columns: self.anchor_columns.load(Ordering::Relaxed),
                stages: StageBreakdown::from_nanos(std::array::from_fn(|i| {
                    self.stage_nanos[i].load(Ordering::Relaxed)
                })),
            },
            queue_wait: self.queue_wait.snapshot(),
            step_time: self.step_time.snapshot(),
            token_latency: self.token_latency.snapshot(),
        }
    }
}

/// One event drained from a shard's ring, tagged with its shard index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardEvent {
    /// The shard whose ring held the event.
    pub shard: usize,
    /// The event itself (kind, timestamp, detail).
    pub event: Event,
}

impl std::fmt::Display for ShardEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} {}", self.shard, self.event)
    }
}

impl Serialize for ShardEvent {
    fn to_value(&self) -> Value {
        let mut map = vec![("shard".to_string(), Value::Int(self.shard as i128))];
        if let Value::Map(event) = self.event.to_value() {
            map.extend(event);
        }
        Value::Map(map)
    }
}

/// A point-in-time snapshot of one shard's serving counters, latency
/// histograms and stage breakdown. Values are read independently with
/// `Relaxed` loads and may mutually tear — see the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Requests in flight toward the shard: queued plus blocking sends
    /// stalled on a full queue (values above the queue capacity mean
    /// producers are experiencing backpressure).
    pub queue_depth: usize,
    /// Sessions open on the shard's engine.
    pub open_sessions: usize,
    /// Tokens accepted into the engine.
    pub submitted: u64,
    /// Results delivered to client streams.
    pub delivered: u64,
    /// Deliveries later than the configured per-token deadline.
    pub deadline_misses: u64,
    /// Sessions evicted after idling past the TTL.
    pub evicted_sessions: u64,
    /// Requests addressed to unknown/closed sessions.
    pub rejected_requests: u64,
    /// Events overwritten in the shard's ring before being drained.
    pub dropped_events: u64,
    /// Trace spans overwritten in the shard's ring before being drained.
    pub dropped_spans: u64,
    /// The shard engine's own step/skip/stage accounting.
    pub engine: EngineStats,
    /// Submit-to-dequeue queue wait of accepted tokens.
    pub queue_wait: HistogramSnapshot,
    /// Wall-clock per batched engine step.
    pub step_time: HistogramSnapshot,
    /// End-to-end submit-to-delivery token latency.
    pub token_latency: HistogramSnapshot,
}

impl Serialize for ShardStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("shard".to_string(), Value::Int(self.shard as i128)),
            (
                "queue_depth".to_string(),
                Value::Int(self.queue_depth as i128),
            ),
            (
                "open_sessions".to_string(),
                Value::Int(self.open_sessions as i128),
            ),
            ("submitted".to_string(), Value::Int(self.submitted as i128)),
            ("delivered".to_string(), Value::Int(self.delivered as i128)),
            (
                "deadline_misses".to_string(),
                Value::Int(self.deadline_misses as i128),
            ),
            (
                "evicted_sessions".to_string(),
                Value::Int(self.evicted_sessions as i128),
            ),
            (
                "rejected_requests".to_string(),
                Value::Int(self.rejected_requests as i128),
            ),
            (
                "dropped_events".to_string(),
                Value::Int(self.dropped_events as i128),
            ),
            (
                "dropped_spans".to_string(),
                Value::Int(self.dropped_spans as i128),
            ),
            ("steps".to_string(), Value::Int(self.engine.steps as i128)),
            ("tokens".to_string(), Value::Int(self.engine.tokens as i128)),
            (
                "sparse_steps".to_string(),
                Value::Int(self.engine.sparse_steps as i128),
            ),
            (
                "dense_steps".to_string(),
                Value::Int(self.engine.dense_steps as i128),
            ),
            (
                "skip_fraction".to_string(),
                Value::Float(self.engine.skip_fraction()),
            ),
            ("stages".to_string(), self.engine.stages.to_value()),
            ("queue_wait".to_string(), self.queue_wait.to_value()),
            ("step_time".to_string(), self.step_time.to_value()),
            ("token_latency".to_string(), self.token_latency.to_value()),
        ])
    }
}

/// Aggregate statistics across every shard of a [`crate::Server`].
///
/// Snapshots are taken per shard without stopping workers, so values
/// may mutually tear across (and within) shards — see the module docs.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    /// Requests in flight toward all shards (queued + stalled sends).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Sessions open across all shards.
    pub fn open_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.open_sessions).sum()
    }

    /// Tokens accepted across all shards.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.submitted).sum()
    }

    /// Results delivered across all shards.
    pub fn delivered(&self) -> u64 {
        self.shards.iter().map(|s| s.delivered).sum()
    }

    /// Deadline misses across all shards.
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_misses).sum()
    }

    /// TTL evictions across all shards.
    pub fn evicted_sessions(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_sessions).sum()
    }

    /// Requests rejected (unknown/closed session, post-shutdown intake)
    /// across all shards.
    pub fn rejected_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_requests).sum()
    }

    /// Trace spans lost to ring overwrite across all shards.
    pub fn dropped_spans(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_spans).sum()
    }

    /// Batched engine steps across all shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.steps).sum()
    }

    /// Tokens processed by the shard engines (≤ `submitted`; the
    /// difference is still queued).
    pub fn tokens(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.tokens).sum()
    }

    /// Steps that fell back to the dense kernel, across all shards.
    pub fn dense_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.dense_steps).sum()
    }

    /// Fraction of recurrent weight fetches skipped, aggregated over all
    /// shard engines.
    pub fn skip_fraction(&self) -> f64 {
        let fetched: u64 = self.shards.iter().map(|s| s.engine.fetched_rows).sum();
        let total: u64 = self.shards.iter().map(|s| s.engine.total_rows).sum();
        if total == 0 {
            0.0
        } else {
            1.0 - fetched as f64 / total as f64
        }
    }

    /// Queue-wait distribution merged across all shards.
    pub fn queue_wait(&self) -> HistogramSnapshot {
        self.merged(|s| &s.queue_wait)
    }

    /// Engine-step wall-clock distribution merged across all shards.
    pub fn step_time(&self) -> HistogramSnapshot {
        self.merged(|s| &s.step_time)
    }

    /// End-to-end token-latency distribution merged across all shards.
    pub fn token_latency(&self) -> HistogramSnapshot {
        self.merged(|s| &s.token_latency)
    }

    /// Cumulative per-stage step breakdown summed across all shards.
    pub fn stages(&self) -> StageBreakdown {
        let mut total = StageBreakdown::zero();
        for s in &self.shards {
            total.add(&s.engine.stages);
        }
        total
    }

    fn merged(&self, pick: impl Fn(&ShardStats) -> &HistogramSnapshot) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for s in &self.shards {
            merged.merge(pick(s));
        }
        merged
    }

    /// Renders the snapshot as pretty-printed JSON (shards, histograms
    /// with buckets, stage breakdown) via the vendored serde.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("value serialization is infallible")
    }
}

impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "shards".to_string(),
                Value::Seq(self.shards.iter().map(|s| s.to_value()).collect()),
            ),
            (
                "queue_depth".to_string(),
                Value::Int(self.queue_depth() as i128),
            ),
            (
                "open_sessions".to_string(),
                Value::Int(self.open_sessions() as i128),
            ),
            (
                "submitted".to_string(),
                Value::Int(self.submitted() as i128),
            ),
            (
                "delivered".to_string(),
                Value::Int(self.delivered() as i128),
            ),
            (
                "deadline_misses".to_string(),
                Value::Int(self.deadline_misses() as i128),
            ),
            ("tokens".to_string(), Value::Int(self.tokens() as i128)),
            (
                "skip_fraction".to_string(),
                Value::Float(self.skip_fraction()),
            ),
            ("stages".to_string(), self.stages().to_value()),
            ("queue_wait".to_string(), self.queue_wait().to_value()),
            ("step_time".to_string(), self.step_time().to_value()),
            ("token_latency".to_string(), self.token_latency().to_value()),
        ])
    }
}

impl std::fmt::Display for ServerStats {
    /// A per-shard table plus merged percentile lines and the aggregate
    /// stage breakdown — the human form of [`ServerStats::to_json`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>6} {:>6} {:>10} {:>10} {:>7} {:>7} {:>7} {:>6}",
            "shard", "queue", "open", "submitted", "delivered", "missed", "evict", "reject", "skip"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>5} {:>6} {:>6} {:>10} {:>10} {:>7} {:>7} {:>7} {:>5.1}%",
                s.shard,
                s.queue_depth,
                s.open_sessions,
                s.submitted,
                s.delivered,
                s.deadline_misses,
                s.evicted_sessions,
                s.rejected_requests,
                s.engine.skip_fraction() * 100.0,
            )?;
        }
        writeln!(f, "queue-wait    {}", self.queue_wait())?;
        writeln!(f, "step-time     {}", self.step_time())?;
        writeln!(f, "token-latency {}", self.token_latency())?;
        let stages = self.stages();
        if !stages.is_zero() {
            writeln!(f, "step stage breakdown:")?;
            write!(f, "{stages}")?;
        } else {
            write!(f, "step stage breakdown: (stage timing disabled)")?;
        }
        Ok(())
    }
}

/// Converts a [`Duration`] measured on the serving path into the
/// nanosecond unit the histograms record (saturating).
pub(crate) fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_across_shards() {
        let mut a = ShardShared::new(4, 16, Instant::now()).snapshot(0);
        a.submitted = 10;
        a.engine.tokens = 8;
        a.engine.dense_steps = 2;
        a.rejected_requests = 1;
        let mut b = a;
        b.shard = 1;
        b.submitted = 5;
        let stats = ServerStats { shards: vec![a, b] };
        assert_eq!(stats.submitted(), 15);
        assert_eq!(stats.tokens(), 16);
        assert_eq!(stats.dense_steps(), 4);
        assert_eq!(stats.rejected_requests(), 2);
    }

    #[test]
    fn display_renders_one_row_per_shard_and_percentiles() {
        let shared = ShardShared::new(4, 16, Instant::now());
        shared.queue_wait.record(1_000);
        shared.token_latency.record(2_000);
        let stats = ServerStats {
            shards: vec![shared.snapshot(0)],
        };
        let rendered = stats.to_string();
        assert!(rendered.contains("shard"));
        assert!(rendered.contains("token-latency"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn json_nests_shards_and_histograms() {
        let shared = ShardShared::new(4, 16, Instant::now());
        shared.step_time.record(500);
        let stats = ServerStats {
            shards: vec![shared.snapshot(0)],
        };
        let json = stats.to_json();
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"step_time\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"recurrent-gemm_ns\""));
    }

    #[test]
    fn stage_breakdown_round_trips_through_the_atomics() {
        let shared = ShardShared::new(4, 16, Instant::now());
        let published = StageBreakdown::from_nanos([1, 2, 3, 4, 5, 6]);
        let engine = EngineStats {
            stages: published,
            ..Default::default()
        };
        shared.publish_engine(&engine);
        let snap = shared.snapshot(0);
        assert_eq!(snap.engine.stages, published);
        assert_eq!(snap.engine.stages.get(Stage::RecurrentGemm), 3);
    }
}
