//! Chrome trace-event export of drained span traces.
//!
//! [`crate::Server::drain_trace`] hands back a [`TraceExport`]: every
//! shard's sampled spans merged onto one timeline (all rings share one
//! clock origin). [`TraceExport::to_chrome_json`] renders them in the
//! Chrome trace-event JSON format, which opens directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * one *process* per shard (`pid = shard + 1`, named `shard N`),
//! * one *thread group* per traced stream, split into four lanes —
//!   `client` (submit / stall / recv / token umbrellas), `queue`
//!   (queue-wait), `engine` (batch step + stage children) and
//!   `delivery` — so a token's life reads top-to-bottom in the UI,
//! * complete (`"X"`) events for closed intervals, async (`"b"`/`"e"`)
//!   pairs for the load generator's overlapping token umbrellas, and
//!   metadata (`"M"`) events naming every process and thread.
//!
//! [`validate_chrome_json`] strict-parses an export back through the
//! vendored serde and checks the structural invariants the format
//! requires — the round-trip the example and CI lane gate on.

use crate::stats::ShardEvent;
use serde::value::Value;
use zskip_telemetry::{Span, SpanKind};

/// One span drained from a shard's ring, tagged with its shard index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpan {
    /// The shard whose ring held the span.
    pub shard: usize,
    /// The span itself.
    pub span: Span,
}

impl std::fmt::Display for ShardSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} {}", self.shard, self.span)
    }
}

/// A drained trace: every shard's spans merged in global start-time
/// order, ready for rendering.
#[derive(Clone, Debug, Default)]
pub struct TraceExport {
    spans: Vec<ShardSpan>,
    dropped: u64,
    /// Optional shard events folded in as instant markers (see
    /// [`TraceExport::with_events`]).
    events: Vec<ShardEvent>,
}

/// Which of the four per-stream display lanes a span kind renders in.
fn lane(kind: SpanKind) -> (u64, &'static str) {
    match kind {
        SpanKind::ClientSubmit
        | SpanKind::BackpressureStall
        | SpanKind::ClientRecv
        | SpanKind::Token => (0, "client"),
        SpanKind::QueueWait => (1, "queue"),
        SpanKind::BatchStep | SpanKind::Stage(_) => (2, "engine"),
        SpanKind::Delivery => (3, "delivery"),
    }
}

const LANES: u64 = 4;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Microseconds (fractional) from origin nanoseconds — the `ts`/`dur`
/// unit the trace-event format uses.
fn micros(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

impl TraceExport {
    pub(crate) fn new(spans: Vec<ShardSpan>, dropped: u64) -> Self {
        Self {
            spans,
            dropped,
            events: Vec::new(),
        }
    }

    /// The drained spans, globally ordered by start time (ties broken by
    /// end time, shard, then span id — deterministic).
    pub fn spans(&self) -> &[ShardSpan] {
        &self.spans
    }

    /// Spans lost to ring overwrite before this drain (cumulative across
    /// all shards).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of drained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the drain produced no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Folds drained shard events in as instant markers on their shard's
    /// timeline, so session churn and stalls line up with the spans.
    pub fn with_events(mut self, events: Vec<ShardEvent>) -> Self {
        self.events = events;
        self
    }

    /// Renders the trace as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form). Open the file in Perfetto
    /// or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut trace_events: Vec<Value> = Vec::new();
        // Compact per-trace thread numbering: tid must be a small stable
        // int, TraceId is a 64-bit hash. First-seen order is start-time
        // order, so earlier streams get lower thread ranks.
        let mut stream_rank: Vec<(usize, u64)> = Vec::new();
        let mut rank_of: std::collections::HashMap<(usize, u64), u64> =
            std::collections::HashMap::new();
        let mut shards_seen: Vec<usize> = Vec::new();
        for s in &self.spans {
            if !shards_seen.contains(&s.shard) {
                shards_seen.push(s.shard);
            }
            let key = (s.shard, s.span.trace.0);
            rank_of.entry(key).or_insert_with(|| {
                stream_rank.push(key);
                stream_rank.len() as u64 - 1
            });
        }
        for &shard in &shards_seen {
            trace_events.push(map(vec![
                ("name", Value::Str("process_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::Int(shard as i128 + 1)),
                ("tid", Value::Int(0)),
                (
                    "args",
                    map(vec![("name", Value::Str(format!("shard {shard}")))]),
                ),
            ]));
        }
        for (rank, &(shard, trace)) in stream_rank.iter().enumerate() {
            for lane_idx in 0..LANES {
                let lane_name = ["client", "queue", "engine", "delivery"][lane_idx as usize];
                trace_events.push(map(vec![
                    ("name", Value::Str("thread_name".into())),
                    ("ph", Value::Str("M".into())),
                    ("pid", Value::Int(shard as i128 + 1)),
                    ("tid", Value::Int((rank as u64 * LANES + lane_idx) as i128)),
                    (
                        "args",
                        map(vec![(
                            "name",
                            Value::Str(format!("stream {trace:#018x} {lane_name}")),
                        )]),
                    ),
                ]));
            }
        }
        for s in &self.spans {
            let rank = rank_of[&(s.shard, s.span.trace.0)];
            let (lane_idx, _) = lane(s.span.kind);
            let pid = Value::Int(s.shard as i128 + 1);
            let tid = Value::Int((rank * LANES + lane_idx) as i128);
            let args = span_args(&s.span);
            if s.span.kind == SpanKind::Token {
                // Token umbrellas overlap within a stream (a round's
                // tokens are all in flight together), which "X" events
                // cannot express on one track — use an async pair keyed
                // by a globally unique id.
                let async_id = format!("{:#x}", ((s.shard as u64) << 48) | s.span.id.0);
                trace_events.push(map(vec![
                    ("name", Value::Str(s.span.kind.name().into())),
                    ("cat", Value::Str("token".into())),
                    ("ph", Value::Str("b".into())),
                    ("id", Value::Str(async_id.clone())),
                    ("pid", pid.clone()),
                    ("tid", tid.clone()),
                    ("ts", micros(s.span.start_ns)),
                    ("args", args),
                ]));
                trace_events.push(map(vec![
                    ("name", Value::Str(s.span.kind.name().into())),
                    ("cat", Value::Str("token".into())),
                    ("ph", Value::Str("e".into())),
                    ("id", Value::Str(async_id)),
                    ("pid", pid),
                    ("tid", tid),
                    ("ts", micros(s.span.end_ns)),
                ]));
            } else {
                trace_events.push(map(vec![
                    ("name", Value::Str(s.span.kind.name().into())),
                    ("cat", Value::Str("zskip".into())),
                    ("ph", Value::Str("X".into())),
                    ("pid", pid),
                    ("tid", tid),
                    ("ts", micros(s.span.start_ns)),
                    ("dur", micros(s.span.duration_ns())),
                    ("args", args),
                ]));
            }
        }
        for e in &self.events {
            // Instant markers ("i") on the shard's process, thread 0 —
            // scope "p" pins the marker to the process row.
            trace_events.push(map(vec![
                ("name", Value::Str(e.event.kind.name().into())),
                ("cat", Value::Str("event".into())),
                ("ph", Value::Str("i".into())),
                ("s", Value::Str("p".into())),
                ("pid", Value::Int(e.shard as i128 + 1)),
                ("tid", Value::Int(0)),
                ("ts", Value::Float(e.event.at_micros as f64)),
                (
                    "args",
                    map(vec![("detail", Value::Int(e.event.detail as i128))]),
                ),
            ]));
        }
        let doc = map(vec![
            ("traceEvents", Value::Seq(trace_events)),
            ("displayTimeUnit", Value::Str("ms".into())),
            ("droppedSpans", Value::Int(self.dropped as i128)),
        ]);
        serde_json::to_string_pretty(&doc).expect("value serialization is infallible")
    }
}

fn span_args(span: &Span) -> Value {
    let trace = ("trace", Value::Str(format!("{:#018x}", span.trace.0)));
    match span.kind {
        SpanKind::BatchStep => map(vec![
            trace,
            ("step", Value::Int(span.a as i128)),
            ("batch", Value::Int((span.b >> 16) as i128)),
            ("skip_permille", Value::Int((span.b & 0xFFFF) as i128)),
        ]),
        SpanKind::Stage(_) => map(vec![trace, ("step", Value::Int(span.a as i128))]),
        SpanKind::QueueWait | SpanKind::ClientSubmit => {
            map(vec![trace, ("tokens", Value::Int(span.a as i128))])
        }
        SpanKind::Delivery => map(vec![trace, ("on_time", Value::Int(span.a as i128))]),
        SpanKind::Token => map(vec![
            trace,
            ("round", Value::Int(span.a as i128)),
            ("deadline_miss", Value::Int(span.b as i128)),
        ]),
        SpanKind::BackpressureStall | SpanKind::ClientRecv => map(vec![trace]),
    }
}

/// Summary counts [`validate_chrome_json`] returns on success.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceValidation {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"X"`) duration events.
    pub complete: usize,
    /// Async begin (`"b"`) events.
    pub async_begins: usize,
    /// Async end (`"e"`) events.
    pub async_ends: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
    /// Instant (`"i"`) marker events.
    pub instants: usize,
}

/// Strict-parses a Chrome trace-event JSON document through the vendored
/// serde and validates its structure: a `traceEvents` array whose every
/// entry names an event with a known phase, integer `pid`/`tid`, a
/// non-negative `ts` (except metadata), a non-negative `dur` on complete
/// events, an `id` on async events — and balanced async begin/end
/// counts. Also round-trips the parsed value back through the serializer
/// to pin that the export emits exactly what the parser reads.
pub fn validate_chrome_json(json: &str) -> Result<TraceValidation, String> {
    let doc: Value =
        serde_json::from_str(json).map_err(|e| format!("trace JSON failed to parse: {e}"))?;
    // Round-trip: serialize the parsed tree and parse it again; both
    // trees must agree exactly.
    let rendered = serde_json::to_string(&doc).map_err(|e| format!("re-serialize failed: {e}"))?;
    let reparsed: Value =
        serde_json::from_str(&rendered).map_err(|e| format!("round-trip re-parse failed: {e}"))?;
    if reparsed != doc {
        return Err("round-trip through the vendored serde changed the document".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .ok_or("missing traceEvents array")?;
    doc.get("displayTimeUnit")
        .ok_or("missing displayTimeUnit")?;
    let mut v = TraceValidation {
        events: events.len(),
        ..Default::default()
    };
    for (i, event) in events.iter().enumerate() {
        let fail = |msg: &str| format!("traceEvents[{i}]: {msg}");
        event.as_map().ok_or_else(|| fail("not an object"))?;
        match event.get("name") {
            Some(Value::Str(_)) => {}
            _ => return Err(fail("missing string name")),
        }
        let ph = match event.get("ph") {
            Some(Value::Str(ph)) => ph.as_str(),
            _ => return Err(fail("missing string ph")),
        };
        for key in ["pid", "tid"] {
            match event.get(key) {
                Some(Value::Int(_)) => {}
                _ => return Err(fail(&format!("missing integer {key}"))),
            }
        }
        let ts_ok = |key: &str| match event.get(key) {
            Some(Value::Float(f)) => *f >= 0.0,
            Some(Value::Int(n)) => *n >= 0,
            _ => false,
        };
        match ph {
            "M" => v.metadata += 1,
            "X" => {
                if !ts_ok("ts") || !ts_ok("dur") {
                    return Err(fail("complete event needs non-negative ts and dur"));
                }
                v.complete += 1;
            }
            "b" | "e" => {
                if !ts_ok("ts") {
                    return Err(fail("async event needs non-negative ts"));
                }
                match event.get("id") {
                    Some(Value::Str(_)) => {}
                    _ => return Err(fail("async event needs a string id")),
                }
                if ph == "b" {
                    v.async_begins += 1;
                } else {
                    v.async_ends += 1;
                }
            }
            "i" => {
                if !ts_ok("ts") {
                    return Err(fail("instant event needs non-negative ts"));
                }
                v.instants += 1;
            }
            other => return Err(fail(&format!("unknown phase {other:?}"))),
        }
    }
    if v.async_begins != v.async_ends {
        return Err(format!(
            "unbalanced async events: {} begins vs {} ends",
            v.async_begins, v.async_ends
        ));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_telemetry::{SpanId, TraceId};

    fn span(kind: SpanKind, start_ns: u64, end_ns: u64, id: u64) -> ShardSpan {
        ShardSpan {
            shard: 0,
            span: Span {
                trace: TraceId(42),
                id: SpanId(id),
                kind,
                start_ns,
                end_ns,
                a: 1,
                b: 0,
            },
        }
    }

    #[test]
    fn empty_export_is_valid_chrome_json() {
        let json = TraceExport::default().to_chrome_json();
        let v = validate_chrome_json(&json).unwrap();
        assert_eq!(v.complete, 0);
        assert_eq!(v.events, 0);
    }

    #[test]
    fn spans_render_as_complete_events_and_tokens_as_async_pairs() {
        let export = TraceExport::new(
            vec![
                span(SpanKind::ClientSubmit, 0, 100, 0),
                span(SpanKind::QueueWait, 100, 250, 1),
                span(SpanKind::Token, 0, 400, 2),
                span(SpanKind::Token, 10, 500, 3),
            ],
            0,
        );
        let json = export.to_chrome_json();
        let v = validate_chrome_json(&json).unwrap();
        assert_eq!(v.complete, 2);
        assert_eq!(v.async_begins, 2);
        assert_eq!(v.async_ends, 2);
        // 1 process name + 4 lane thread names for the single stream.
        assert_eq!(v.metadata, 5);
        assert!(json.contains("\"client-submit\""));
        assert!(json.contains("\"shard 0\""));
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\": 3}").is_err());
        let unbalanced = r#"{"traceEvents": [
            {"name": "t", "cat": "c", "ph": "b", "id": "0x1",
             "pid": 1, "tid": 0, "ts": 0.0}
        ], "displayTimeUnit": "ms"}"#;
        assert!(validate_chrome_json(unbalanced)
            .unwrap_err()
            .contains("unbalanced"));
        let no_phase = r#"{"traceEvents": [
            {"name": "t", "pid": 1, "tid": 0, "ts": 0.0}
        ], "displayTimeUnit": "ms"}"#;
        assert!(validate_chrome_json(no_phase).is_err());
    }

    #[test]
    fn trailing_garbage_fails_the_strict_parse() {
        let json = TraceExport::default().to_chrome_json();
        assert!(validate_chrome_json(&format!("{json} trailing")).is_err());
    }
}
