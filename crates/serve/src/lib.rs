//! `zskip-serve` — an async, sharded serving layer that scales skip-sparse
//! inference to thousands of concurrent streams.
//!
//! `zskip-runtime` made the paper's skip-sparsity (Ardakani, Ji & Gross,
//! DATE 2019) pay off inside one synchronous [`Engine`](zskip_runtime::Engine);
//! this crate puts a production front on it. The whole stack is generic
//! over the served [`FrozenModel`](zskip_runtime::FrozenModel) family —
//! the LSTM char-LM, the 3-gate GRU, the embedding-input word-LM and the
//! pixel-streaming classifier all serve through the same front-end:
//!
//! * [`Server`] — N worker threads, each owning a private engine *shard*
//!   over a clone of the frozen model, fed by bounded `sync_channel`
//!   request queues (full queue ⇒ backpressure, not unbounded buffering),
//! * [`Client`] — a blocking handle (`open` / `send` / `recv` / `close`,
//!   plus the select-style [`Client::recv_any`] so one driver thread can
//!   own many streams); streams hash onto a shard at open and stay
//!   pinned there via the generational [`StreamId`]; result channels are
//!   bounded too, so a consumer that stops `recv`ing is evicted instead
//!   of buffering results without limit,
//! * per-session TTL eviction and per-token deadline-miss accounting,
//! * [`ServerStats`] — a cross-shard aggregate (throughput, skip
//!   fraction, queue depth, deadline misses, evictions),
//! * sampled per-token span tracing — deterministic 1-in-N stream
//!   sampling, per-shard span rings, [`Server::drain_trace`] and a
//!   Chrome trace-event / Perfetto export ([`TraceExport`]),
//! * [`LoadGenerator`] — sustained mixed open/submit/close traffic for
//!   benches and examples.
//!
//! Sharding is **transparent**: batching inside one engine never changes
//! per-stream outputs (the runtime's proptests), and shards are fully
//! independent engines over identical weights — so a sharded server's
//! logits are bit-for-bit the logits of a single engine replaying the
//! same per-session token streams, for every family
//! (`tests/determinism.rs` runs the harness over both the LSTM and the
//! GRU char-LMs).
//!
//! # Quickstart
//!
//! ```
//! use zskip_runtime::FrozenCharLm;
//! use zskip_serve::{ServeConfig, Server};
//!
//! let server = Server::start(
//!     FrozenCharLm::random(32, 16, 1),
//!     ServeConfig::for_threshold(0.2).with_shards(2),
//! );
//! let mut client = server.client();
//! let stream = client.open().unwrap();
//! client.send(stream, 7).unwrap();
//! let next = client.recv(stream).unwrap();
//! assert_eq!(next.logits.len(), 32);
//! client.close(stream).unwrap();
//! server.shutdown();
//! ```

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod stats;
pub mod trace_export;

pub use client::{Client, StreamId};
pub use error::ServeError;
pub use loadgen::{LoadConfig, LoadGenerator, LoadReport};
pub use server::{ServeConfig, Server};
pub use stats::{ServerStats, ShardEvent, ShardStats};
pub use trace_export::{validate_chrome_json, ShardSpan, TraceExport, TraceValidation};
// Re-exported so event/histogram/stage/span types drained or snapshotted
// from a server are nameable without depending on the telemetry crate.
pub use zskip_telemetry::{
    trace_env_allowed, Event, EventKind, HistogramSnapshot, Span, SpanId, SpanKind, StageBreakdown,
    TraceId, TraceSampler,
};
