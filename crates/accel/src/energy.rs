//! Component energy model, calibrated to the paper's reported operating
//! points (Section III-C/D).
//!
//! The paper reports 925.3 GOPS/W at the dense peak and a batch-1 dense
//! efficiency of ≈115.7 GOPS/W, i.e. an essentially *constant* ≈83 mW at
//! 200 MHz regardless of PE utilization — and its batch-16 bars are
//! exactly proportional to the batch-16 GOPS, which means the authors
//! divided performance by one synthesis-reported power number rather than
//! integrating activity. Both methodologies are provided:
//!
//! * [`EnergyModel::calibrated_65nm`] — activity-based components
//!   (DRAM pJ/B, MAC pJ, static W) whose totals reproduce the paper's
//!   bandwidth-saturated points (batch 1 and 8) within ~10%,
//! * [`EnergyModel::paper_constant_power`] — the paper's constant-power
//!   methodology, which reproduces Fig. 9 exactly by construction.
//!
//! | component | value | rationale |
//! |---|---|---|
//! | DRAM interface | 8 pJ/B | LPDDR4 interface energy per payload byte |
//! | 8-bit MAC + scratch R/W | 0.10 pJ | 65 nm integer MAC, datapath share |
//! | static + clock | 38 mW | leakage and clock tree at 200 MHz |
//!
//! Because skipping removes weight bytes and MACs *and* time in the same
//! proportion, average power stays ≈constant under the activity model
//! too, and GOPS/W scales with effective GOPS — the structure of Fig. 9.

use crate::dataflow::StepTraffic;
use serde::{Deserialize, Serialize};

/// Energy/power parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per DRAM payload byte, picojoules.
    pub dram_pj_per_byte: f64,
    /// Energy per MAC including its scratch access, picojoules.
    pub mac_pj: f64,
    /// Static plus clock power, watts.
    pub static_watts: f64,
    /// When set, overrides the activity model with a fixed average power
    /// (the paper's methodology).
    pub constant_power_watts: Option<f64>,
}

impl EnergyModel {
    /// Calibrated 65 nm activity-based defaults (see module docs).
    pub fn calibrated_65nm() -> Self {
        Self {
            dram_pj_per_byte: 8.0,
            mac_pj: 0.10,
            static_watts: 0.038,
            constant_power_watts: None,
        }
    }

    /// The paper's constant-power methodology: performance divided by the
    /// synthesis-reported ≈82.6 mW (76.4 GOPS dense peak / 925.3 GOPS/W).
    pub fn paper_constant_power() -> Self {
        Self {
            constant_power_watts: Some(76.4 / 925.3),
            ..Self::calibrated_65nm()
        }
    }

    /// Total energy in joules for a run.
    pub fn energy_joules(&self, traffic: &StepTraffic, macs: u64, seconds: f64) -> f64 {
        if let Some(p) = self.constant_power_watts {
            return p * seconds;
        }
        let dram = traffic.total() as f64 * self.dram_pj_per_byte * 1e-12;
        let compute = macs as f64 * self.mac_pj * 1e-12;
        let stat = self.static_watts * seconds;
        dram + compute + stat
    }

    /// Average power in watts.
    pub fn average_power(&self, traffic: &StepTraffic, macs: u64, seconds: f64) -> f64 {
        self.energy_joules(traffic, macs, seconds) / seconds
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::dataflow::DataflowModel;
    use crate::trace::SkipTrace;
    use crate::workload::LstmWorkload;

    fn run_dense(batch: usize, e: &EnergyModel) -> (f64, f64) {
        let m = DataflowModel::new(ArchConfig::paper());
        let w = LstmWorkload::ptb_char(batch);
        let trace = SkipTrace::dense(w.dh, w.seq_len);
        let (cycles, traffic, macs) = m.run(&w, &trace);
        let seconds = cycles as f64 / m.arch().clock_hz;
        let power = e.average_power(&traffic, macs, seconds);
        let gops = w.total_ops() as f64 / seconds / 1e9;
        (gops, gops / power)
    }

    #[test]
    fn dense_peak_efficiency_near_paper() {
        // Paper: 925.3 GOPS/W dense peak (batch 8, PTB-char).
        let (_, eff) = run_dense(8, &EnergyModel::calibrated_65nm());
        assert!(
            (eff - 925.3).abs() / 925.3 < 0.10,
            "dense peak efficiency {eff} GOPS/W vs paper 925.3"
        );
    }

    #[test]
    fn batch1_dense_efficiency_near_paper() {
        // Paper Fig. 9: 115.7 GOPS/W at batch 1.
        let (_, eff) = run_dense(1, &EnergyModel::calibrated_65nm());
        assert!(
            (eff - 115.7).abs() / 115.7 < 0.12,
            "batch-1 dense efficiency {eff} GOPS/W vs paper 115.7"
        );
    }

    #[test]
    fn constant_power_mode_reproduces_fig9_exactly() {
        let e = EnergyModel::paper_constant_power();
        for (batch, expect) in [(1usize, 115.7), (8, 920.5), (16, 920.5)] {
            let (_, eff) = run_dense(batch, &e);
            assert!(
                (eff - expect).abs() / expect < 0.03,
                "batch {batch}: {eff} GOPS/W vs paper {expect}"
            );
        }
    }

    #[test]
    fn power_is_roughly_constant_at_bandwidth_saturated_points() {
        // Batches 1 and 8 keep the DRAM interface saturated, so the
        // activity model predicts near-identical power; batch 16 halves
        // the interface duty cycle and genuinely uses less (a point where
        // our activity model is *more* favorable than the paper's
        // constant-power accounting — see EXPERIMENTS.md).
        let m = DataflowModel::new(ArchConfig::paper());
        let e = EnergyModel::calibrated_65nm();
        let mut powers = Vec::new();
        for b in [1usize, 8] {
            let w = LstmWorkload::ptb_char(b);
            let trace = SkipTrace::dense(w.dh, w.seq_len);
            let (cycles, traffic, macs) = m.run(&w, &trace);
            let s = cycles as f64 / m.arch().clock_hz;
            powers.push(e.average_power(&traffic, macs, s));
        }
        assert!(
            (powers[0] - powers[1]).abs() / powers[1] < 0.10,
            "power spread too wide: {powers:?}"
        );
    }

    #[test]
    fn sparse_run_uses_less_energy_than_dense() {
        let m = DataflowModel::new(ArchConfig::paper());
        let e = EnergyModel::calibrated_65nm();
        let w = LstmWorkload::ptb_char(8);
        let dense = SkipTrace::dense(w.dh, w.seq_len);
        let sparse = SkipTrace::from_profile(
            w.dh,
            w.seq_len,
            w.batch,
            crate::trace::SparsityProfile::new(0.8, 0.0),
            1,
        );
        let (dc, dt, dm) = m.run(&w, &dense);
        let (sc, st, sm) = m.run(&w, &sparse);
        let de = e.energy_joules(&dt, dm, dc as f64 / 200e6);
        let se = e.energy_joules(&st, sm, sc as f64 / 200e6);
        assert!(se < de * 0.35, "sparse {se} J vs dense {de} J");
    }
}
