//! Cycle-stepped simulation of the batched, pipelined GEMV dataflow of
//! Fig. 5 — the detailed model that validates the analytic per-column
//! formula used by [`DataflowModel`](crate::dataflow::DataflowModel).
//!
//! The model tracks three resources at single-cycle granularity:
//!
//! * the **weight stream**: the DRAM interface stages one group of up to
//!   `weights_per_cycle` weights per cycle, in column-major order over the
//!   stored columns (Fig. 5b/c's `W·x` boxes),
//! * the **input stream**: one state element per cycle (`h[j]` for one
//!   batch lane), which every PE group reuses through the pipeline
//!   registers,
//! * the **PE groups**: `total_pes / weights_per_cycle` groups, each
//!   holding one staged weight group and executing one MAC per PE per
//!   cycle, iterating over the batch lanes (Fig. 5c's interleaving).
//!
//! A skipped column never enters any stream — exactly what the offset
//! encoding buys.

use crate::arch::ArchConfig;

/// Cycle-stepped GEMV pipeline simulator.
#[derive(Clone, Copy, Debug)]
pub struct GemvPipelineSim {
    arch: ArchConfig,
}

impl GemvPipelineSim {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the architecture fails validation.
    pub fn new(arch: ArchConfig) -> Self {
        arch.validate().expect("invalid architecture");
        Self { arch }
    }

    /// Simulates the recurrent GEMV phase over `stored_cols` stored
    /// columns of a `dh`-wide state at batch `batch`, returning the cycle
    /// at which the last MAC retires.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or exceeds the scratch capacity.
    pub fn simulate(&self, dh: usize, batch: usize, stored_cols: usize) -> u64 {
        assert!(batch > 0, "batch must be positive");
        assert!(
            batch <= self.arch.max_batch(),
            "batch exceeds scratch capacity"
        );
        if stored_cols == 0 {
            return 0;
        }
        let w = self.arch.weights_per_cycle;
        let pe_groups = self.arch.total_pes().div_ceil(w);
        let weights_per_col = 4 * dh;
        let groups_per_col = weights_per_col.div_ceil(w);
        let inputs_per_cycle = self.arch.inputs_per_cycle.max(1);

        // next_free[g]: first cycle PE group g can accept a new weight
        // group (single staging register per group, double-buffered fetch).
        let mut next_free = vec![0u64; pe_groups];
        let mut last_retire = 0u64;
        let mut fetch_counter = 0u64; // one weight group staged per cycle

        for col in 0..stored_cols {
            for gi in 0..groups_per_col {
                let k = (col * groups_per_col + gi) as u64;
                let g = (k as usize) % pe_groups;
                // Weights staged after this fetch cycle completes.
                let fetch_ready = fetch_counter + 1;
                fetch_counter += 1;
                // The group processes the batch lanes back-to-back; lane b
                // of column `col` arrives on the input stream at:
                let mut mac_cycle = fetch_ready.max(next_free[g]);
                for b in 0..batch {
                    let input_ready = ((col * batch + b) / inputs_per_cycle) as u64 + 1;
                    mac_cycle = mac_cycle.max(input_ready);
                    // One MAC per PE in the group this cycle.
                    last_retire = last_retire.max(mac_cycle);
                    mac_cycle += 1;
                }
                next_free[g] = mac_cycle;
            }
        }
        last_retire
    }

    /// The analytic prediction for the same phase (per-column cost from
    /// the dataflow model times the stored-column count).
    pub fn analytic(&self, dh: usize, batch: usize, stored_cols: usize) -> u64 {
        let groups = (4 * dh).div_ceil(self.arch.weights_per_cycle);
        let pe_groups = self.arch.total_pes().div_ceil(self.arch.weights_per_cycle);
        let bw = groups as u64;
        let compute = (groups * batch).div_ceil(pe_groups) as u64;
        let per_col = bw.max(compute).max(batch as u64);
        per_col * stored_cols as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchConfig {
        ArchConfig::paper()
    }

    /// The cycle-stepped pipeline must agree with the analytic formula up
    /// to pipeline fill (one `pipeline_depth`-ish constant, not a factor).
    fn assert_close(dh: usize, batch: usize, cols: usize) {
        let sim = GemvPipelineSim::new(arch());
        let detailed = sim.simulate(dh, batch, cols);
        let analytic = sim.analytic(dh, batch, cols);
        // Fill plus one cycle of per-column rounding (see tests/proptests).
        let slack = (sim.arch.pipeline_depth() + batch + cols + 4) as u64;
        assert!(
            detailed >= analytic.saturating_sub(slack) && detailed <= analytic + slack,
            "dh={dh} B={batch} cols={cols}: detailed {detailed} vs analytic {analytic}"
        );
    }

    #[test]
    fn matches_analytic_bandwidth_bound() {
        assert_close(96, 1, 20); // B=1: bandwidth-bound
    }

    #[test]
    fn matches_analytic_balanced_point() {
        assert_close(96, 8, 20); // B=8: balanced
    }

    #[test]
    fn matches_analytic_compute_bound() {
        assert_close(96, 16, 20); // B=16: compute-bound
    }

    #[test]
    fn matches_analytic_small_state_input_bound() {
        // Small dh where the 1-input-per-cycle stream is the bottleneck.
        assert_close(20, 16, 30);
    }

    #[test]
    fn matches_analytic_across_grid() {
        for dh in [16usize, 50, 100, 250] {
            for b in [1usize, 2, 8, 16] {
                assert_close(dh, b, 12);
            }
        }
    }

    #[test]
    fn utilization_rises_with_batch() {
        let sim = GemvPipelineSim::new(arch());
        let (dh, cols) = (100, 50);
        let t1 = sim.simulate(dh, 1, cols);
        let t8 = sim.simulate(dh, 8, cols);
        // 8× the MACs in barely more time.
        assert!(t8 < t1 * 2, "t1={t1} t8={t8}");
    }

    #[test]
    fn skipped_columns_cost_nothing() {
        let sim = GemvPipelineSim::new(arch());
        let full = sim.simulate(100, 8, 50);
        let sparse = sim.simulate(100, 8, 10);
        assert!(sparse < full / 4);
        assert_eq!(sim.simulate(100, 8, 0), 0);
    }
}
