//! LSTM workload description and operation accounting.
//!
//! Operation counts follow Section II-A exactly: Eq. 1 costs
//! `2(dx·4dh + dh·4dh) + 4dh` operations for a dense input (each MAC is
//! two operations, the bias adds `4dh`), but for a one-hot input the
//! `Wx·x` product degenerates to a `4dh`-operation table lookup. Eq. 2 and
//! Eq. 3 cost `3dh` and `dh` respectively.

use serde::{Deserialize, Serialize};

/// How the input vector `x` enters the recurrent computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// One-hot vector (char-level LM): `Wx·x` is a row lookup, never a
    /// GEMV, and costs `4dh` add operations.
    OneHot,
    /// Dense real vector (word-level LM after the embedding): `Wx·x` is a
    /// full GEMV that can never be skipped (the input is not sparse).
    Dense,
    /// A single scalar per step (pixel-by-pixel classification): `Wx` is
    /// `1 × 4dh`.
    Scalar,
}

/// One recurrent workload: the paper's three tasks are instances.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmWorkload {
    /// Hidden size `dh`.
    pub dh: usize,
    /// Input size `dx` (50 for PTB-char one-hot, 300 for PTB-word
    /// embeddings, 1 for sequential MNIST).
    pub dx: usize,
    /// Input kind, which decides whether `Wx·x` is lookup or GEMV.
    pub input: InputKind,
    /// Sequence length processed per inference.
    pub seq_len: usize,
    /// Batch lanes processed together.
    pub batch: usize,
}

impl LstmWorkload {
    /// PTB-char at paper scale: `dh = 1000`, one-hot vocab 50, seq 100.
    pub fn ptb_char(batch: usize) -> Self {
        Self {
            dh: 1000,
            dx: 50,
            input: InputKind::OneHot,
            seq_len: 100,
            batch,
        }
    }

    /// PTB-word at paper scale: `dh = 300`, embedding 300, seq 35.
    pub fn ptb_word(batch: usize) -> Self {
        Self {
            dh: 300,
            dx: 300,
            input: InputKind::Dense,
            seq_len: 35,
            batch,
        }
    }

    /// Sequential MNIST at paper scale: `dh = 100`, scalar pixels, 784
    /// steps.
    pub fn mnist(batch: usize) -> Self {
        Self {
            dh: 100,
            dx: 1,
            input: InputKind::Scalar,
            seq_len: 784,
            batch,
        }
    }

    /// Validates the workload.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.dh == 0 || self.seq_len == 0 || self.batch == 0 {
            return Err("dh, seq_len and batch must be positive".into());
        }
        match self.input {
            InputKind::Scalar if self.dx != 1 => {
                Err(format!("scalar input requires dx = 1, got {}", self.dx))
            }
            _ if self.dx == 0 => Err("dx must be positive".into()),
            _ => Ok(()),
        }
    }

    /// Operations in the recurrent `Wh·h` product, per timestep per lane
    /// (`2·dh·4dh`). This is the only skippable work.
    pub fn wh_ops_per_step(&self) -> u64 {
        2 * self.dh as u64 * 4 * self.dh as u64
    }

    /// Operations in the `Wx·x` contribution, per timestep per lane.
    pub fn wx_ops_per_step(&self) -> u64 {
        match self.input {
            InputKind::OneHot => 4 * self.dh as u64,
            InputKind::Dense | InputKind::Scalar => 2 * self.dx as u64 * 4 * self.dh as u64,
        }
    }

    /// Bias plus element-wise (Eq. 2 and Eq. 3) operations per timestep
    /// per lane: `4dh + 3dh + dh`.
    pub fn pointwise_ops_per_step(&self) -> u64 {
        4 * self.dh as u64 + 3 * self.dh as u64 + self.dh as u64
    }

    /// Total nominal operations per timestep per lane (the numerator of
    /// every GOPS figure, dense or sparse — skipping shortens time, not
    /// the accounted work).
    pub fn ops_per_step(&self) -> u64 {
        self.wh_ops_per_step() + self.wx_ops_per_step() + self.pointwise_ops_per_step()
    }

    /// Total nominal operations for the whole batched sequence.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_step() * self.seq_len as u64 * self.batch as u64
    }

    /// Fraction of per-step work that is skippable (`Wh` share) — the
    /// ceiling on sparse speedup. One-hot tasks approach 1; the word task
    /// sits near 0.5 because the dense `Wx` GEMV is untouchable.
    pub fn skippable_fraction(&self) -> f64 {
        self.wh_ops_per_step() as f64 / self.ops_per_step() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_ops_match_section_iia() {
        let w = LstmWorkload::ptb_char(1);
        // 2·1000·4000 = 8M MAC-ops in Wh.
        assert_eq!(w.wh_ops_per_step(), 8_000_000);
        // One-hot lookup = 4dh.
        assert_eq!(w.wx_ops_per_step(), 4_000);
        // 4dh + 3dh + dh = 8000.
        assert_eq!(w.pointwise_ops_per_step(), 8_000);
        assert_eq!(w.ops_per_step(), 8_012_000);
    }

    #[test]
    fn word_ops_count_dense_wx() {
        let w = LstmWorkload::ptb_word(1);
        assert_eq!(w.wh_ops_per_step(), 2 * 300 * 1200);
        assert_eq!(w.wx_ops_per_step(), 2 * 300 * 1200);
        // Half the mat-vec work is unskippable.
        assert!((w.skippable_fraction() - 0.497).abs() < 0.01);
    }

    #[test]
    fn mnist_is_almost_fully_skippable() {
        let w = LstmWorkload::mnist(1);
        assert!(w.skippable_fraction() > 0.97);
        assert_eq!(w.wx_ops_per_step(), 2 * 400);
    }

    #[test]
    fn total_ops_scale_with_batch_and_steps() {
        let w1 = LstmWorkload::mnist(1);
        let w8 = LstmWorkload::mnist(8);
        assert_eq!(w8.total_ops(), 8 * w1.total_ops());
    }

    #[test]
    fn validation_catches_bad_scalar() {
        let mut w = LstmWorkload::mnist(1);
        w.dx = 3;
        assert!(w.validate().is_err());
        assert!(LstmWorkload::ptb_char(8).validate().is_ok());
    }
}
