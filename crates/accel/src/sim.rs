//! Simulator façade: one call from workload + trace to a full report.

use crate::arch::ArchConfig;
use crate::area::AreaModel;
use crate::dataflow::{DataflowModel, StepTraffic};
use crate::energy::EnergyModel;
use crate::trace::SkipTrace;
use crate::workload::LstmWorkload;
use serde::{Deserialize, Serialize};

/// Everything the benchmarks need from one simulated run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The simulated workload.
    pub workload: LstmWorkload,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Effective throughput: nominal operations / time, in GOPS. For a
    /// dense run this equals achieved utilization × peak; for a sparse
    /// run it exceeds the physical peak because skipped work still counts
    /// (the paper's Fig. 8 metric).
    pub effective_gops: f64,
    /// Fraction of peak MAC slots actually used.
    pub utilization: f64,
    /// Total DRAM traffic.
    pub traffic: StepTraffic,
    /// MACs actually executed.
    pub macs: u64,
    /// Energy in joules.
    pub energy_joules: f64,
    /// Average power in watts.
    pub avg_power_watts: f64,
    /// Energy efficiency in GOPS/W (the Fig. 9 metric).
    pub gops_per_watt: f64,
    /// Mean fraction of skippable columns in the driving trace.
    pub mean_skippable: f64,
}

impl SimReport {
    /// Speedup of `self` over a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.seconds / self.seconds
    }

    /// Energy improvement of `self` over a baseline run.
    pub fn energy_improvement_over(&self, baseline: &SimReport) -> f64 {
        baseline.energy_joules / self.energy_joules
    }
}

/// The zero-state-skipping accelerator simulator.
///
/// # Example
///
/// ```
/// use zskip_accel::{ArchConfig, LstmWorkload, Simulator, SkipTrace};
///
/// let sim = Simulator::paper();
/// let w = LstmWorkload::ptb_char(8);
/// let dense = sim.run(&w, &SkipTrace::dense(w.dh, w.seq_len));
/// assert!(dense.effective_gops > 70.0 && dense.effective_gops < 77.0);
/// let _ = ArchConfig::paper(); // see ArchConfig for the design point
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Simulator {
    dataflow: DataflowModel,
    energy: EnergyModel,
    area: AreaModel,
}

impl Simulator {
    /// Simulator at the paper's design point with calibrated models.
    pub fn paper() -> Self {
        Self::new(
            ArchConfig::paper(),
            EnergyModel::calibrated_65nm(),
            AreaModel::calibrated_65nm(),
        )
    }

    /// Creates a simulator from explicit models.
    ///
    /// # Panics
    ///
    /// Panics if the architecture fails validation.
    pub fn new(arch: ArchConfig, energy: EnergyModel, area: AreaModel) -> Self {
        Self {
            dataflow: DataflowModel::new(arch),
            energy,
            area,
        }
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &ArchConfig {
        self.dataflow.arch()
    }

    /// Die area of the configured architecture in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area.total_mm2(self.dataflow.arch())
    }

    /// Peak dense throughput in GOPS.
    pub fn peak_gops(&self) -> f64 {
        self.dataflow.arch().peak_gops()
    }

    /// Runs a workload against a skip trace.
    ///
    /// Use [`SkipTrace::dense`] for the dense baseline and a measured or
    /// profiled trace for the sparse run.
    ///
    /// # Panics
    ///
    /// Panics on workload/trace mismatches (see
    /// [`DataflowModel::run`](crate::dataflow::DataflowModel)).
    pub fn run(&self, workload: &LstmWorkload, trace: &SkipTrace) -> SimReport {
        let arch = self.dataflow.arch();
        let (cycles, traffic, macs) = self.dataflow.run(workload, trace);
        let seconds = cycles as f64 / arch.clock_hz;
        let effective_gops = workload.total_ops() as f64 / seconds / 1e9;
        let utilization = macs as f64 / (arch.total_pes() as f64 * cycles as f64);
        let energy_joules = self.energy.energy_joules(&traffic, macs, seconds);
        let avg_power_watts = energy_joules / seconds;
        SimReport {
            workload: *workload,
            cycles,
            seconds,
            effective_gops,
            utilization,
            traffic,
            macs,
            energy_joules,
            avg_power_watts,
            gops_per_watt: effective_gops / avg_power_watts,
            mean_skippable: trace.mean_skippable(),
        }
    }

    /// Convenience: dense baseline report for a workload.
    pub fn run_dense(&self, workload: &LstmWorkload) -> SimReport {
        self.run(workload, &SkipTrace::dense(workload.dh, workload.seq_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SparsityProfile;

    #[test]
    fn paper_headline_speedup_is_about_5_2x() {
        // "up to 5.2× speedup and energy efficiency" — PTB-char, batch 8,
        // 81% joint sparsity (Fig. 7 → Fig. 8/9).
        let sim = Simulator::paper();
        let w = LstmWorkload::ptb_char(8);
        let dense = sim.run_dense(&w);
        let sparse_trace = SkipTrace::from_profile(
            w.dh,
            w.seq_len,
            w.batch,
            SparsityProfile::new(0.81, 0.0),
            42,
        );
        let sparse = sim.run(&w, &sparse_trace);
        let speedup = sparse.speedup_over(&dense);
        assert!(
            speedup > 4.6 && speedup < 5.6,
            "headline speedup {speedup} (paper: 5.2×)"
        );
        let energy = sparse.energy_improvement_over(&dense);
        assert!(
            (energy / speedup - 1.0).abs() < 0.15,
            "energy improvement {energy} should track speedup {speedup}"
        );
    }

    #[test]
    fn sparse_effective_gops_exceeds_peak() {
        let sim = Simulator::paper();
        let w = LstmWorkload::ptb_char(8);
        let trace =
            SkipTrace::from_profile(w.dh, w.seq_len, w.batch, SparsityProfile::new(0.81, 0.0), 1);
        let r = sim.run(&w, &trace);
        assert!(r.effective_gops > sim.peak_gops());
        // Physical utilization stays below 1.
        assert!(r.utilization <= 1.0);
    }

    #[test]
    fn dense_report_is_self_consistent() {
        let sim = Simulator::paper();
        let w = LstmWorkload::mnist(8);
        let r = sim.run_dense(&w);
        assert!(r.effective_gops <= sim.peak_gops() * 1.001);
        assert!(r.avg_power_watts > 0.05 && r.avg_power_watts < 0.15);
        assert_eq!(r.mean_skippable, 0.0);
        assert!((r.gops_per_watt - r.effective_gops / r.avg_power_watts).abs() < 1e-9);
    }

    #[test]
    fn area_is_reported() {
        let sim = Simulator::paper();
        assert!((sim.area_mm2() - 1.1).abs() < 0.08);
    }
}
