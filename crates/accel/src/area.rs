//! Silicon area model, calibrated to the paper's reported 1.1 mm² in
//! TSMC 65 nm GP (Section III-C).
//!
//! The paper gives only the total; the per-component split below follows
//! typical 65 nm densities (an 8-bit MAC PE ≈ 2.4 kGE, dual-port SRAM
//! macro overheads, LUT ROMs per tile) scaled so the components sum to
//! the reported total at the paper design point.

use crate::arch::ArchConfig;
use serde::{Deserialize, Serialize};

/// Per-component area parameters (mm²).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One PE (8-bit multiplier, accumulator, pipeline registers).
    pub pe_mm2: f64,
    /// One bit of dual-port scratch SRAM (macro overhead included).
    pub sram_mm2_per_bit: f64,
    /// One activation LUT unit (sigmoid or tanh ROM + interpolation).
    pub lut_mm2: f64,
    /// Routers, controller, encoder and weight/input registers.
    pub fabric_mm2: f64,
}

impl AreaModel {
    /// 65 nm defaults calibrated to total 1.1 mm² for the paper config.
    pub fn calibrated_65nm() -> Self {
        Self {
            pe_mm2: 0.0037,
            sram_mm2_per_bit: 4.0e-6,
            lut_mm2: 0.010,
            fabric_mm2: 0.13,
        }
    }

    /// Total area for an architecture, mm².
    pub fn total_mm2(&self, arch: &ArchConfig) -> f64 {
        let pes = arch.total_pes() as f64 * self.pe_mm2;
        let sram_bits =
            arch.total_pes() as f64 * arch.scratch_entries as f64 * arch.scratch_bits as f64;
        let sram = sram_bits * self.sram_mm2_per_bit;
        // One activation unit per PE column group: the paper draws one
        // sigmoid/tanh block per PE in Fig. 6's tile detail; we charge one
        // per PE slot.
        let luts = arch.total_pes() as f64 / 16.0 * self.lut_mm2;
        pes + sram + luts + self.fabric_mm2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::calibrated_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_totals_1_1_mm2() {
        let a = AreaModel::calibrated_65nm();
        let total = a.total_mm2(&ArchConfig::paper());
        assert!(
            (total - 1.1).abs() < 0.08,
            "area {total} mm² vs paper 1.1 mm²"
        );
    }

    #[test]
    fn area_scales_with_pe_count() {
        let a = AreaModel::calibrated_65nm();
        let mut big = ArchConfig::paper();
        big.pes_per_tile *= 2;
        assert!(a.total_mm2(&big) > a.total_mm2(&ArchConfig::paper()) * 1.5);
    }

    #[test]
    fn scratch_contributes_measurably() {
        let a = AreaModel::calibrated_65nm();
        let mut no_scratch = ArchConfig::paper();
        no_scratch.scratch_entries = 1;
        let diff = a.total_mm2(&ArchConfig::paper()) - a.total_mm2(&no_scratch);
        assert!(diff > 0.05, "scratch area delta {diff}");
    }
}
