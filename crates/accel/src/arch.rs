//! Architecture parameters of the zero-state-skipping accelerator
//! (Section III-B, Fig. 6).
//!
//! The paper's design point: four tiles of 48 PEs each (one tile per LSTM
//! gate), a 200 MHz clock, an LPDDR4 interface delivering 51.2 Gbit/s —
//! "24 8-bit weights and a single 8-bit input element ... at a nominal
//! frequency of 200 MHz" — and a 16-entry × 12-bit scratch SRAM per PE
//! holding partial sums for up to 16 batch lanes.

use serde::{Deserialize, Serialize};

/// Static configuration of the accelerator.
///
/// # Example
///
/// ```
/// use zskip_accel::ArchConfig;
///
/// let arch = ArchConfig::paper();
/// assert_eq!(arch.total_pes(), 192);
/// assert_eq!(arch.peak_gops(), 76.8);
/// assert_eq!(arch.pipeline_depth(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of tiles (one per gate in the paper's dataflow).
    pub tiles: usize,
    /// Processing elements per tile.
    pub pes_per_tile: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Weights delivered per cycle by the DRAM interface.
    pub weights_per_cycle: usize,
    /// Input (state/activation) elements delivered per cycle.
    pub inputs_per_cycle: usize,
    /// Scratch entries per PE (bounds the supported batch size).
    pub scratch_entries: usize,
    /// Scratch word width in bits.
    pub scratch_bits: u8,
    /// Weight/activation precision in bits.
    pub data_bits: u8,
    /// Offset field width of the state encoder, in bits.
    pub offset_bits: u8,
}

impl ArchConfig {
    /// The paper's design point.
    pub fn paper() -> Self {
        Self {
            tiles: 4,
            pes_per_tile: 48,
            clock_hz: 200e6,
            weights_per_cycle: 24,
            inputs_per_cycle: 1,
            scratch_entries: 16,
            scratch_bits: 12,
            data_bits: 8,
            offset_bits: 8,
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.tiles * self.pes_per_tile
    }

    /// Peak throughput in GOPS, counting one MAC as two operations.
    pub fn peak_gops(&self) -> f64 {
        self.total_pes() as f64 * 2.0 * self.clock_hz / 1e9
    }

    /// Weight-reuse pipeline depth: how many cycles it takes the DRAM
    /// interface to feed every PE one weight. Batch sizes at or above this
    /// depth achieve full PE utilization (Fig. 5c).
    pub fn pipeline_depth(&self) -> usize {
        self.total_pes().div_ceil(self.weights_per_cycle)
    }

    /// DRAM payload bandwidth in bytes per cycle implied by the
    /// weight/input rates.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        (self.weights_per_cycle + self.inputs_per_cycle) as f64 * self.data_bits as f64 / 8.0
    }

    /// DRAM payload bandwidth in bytes per second.
    pub fn dram_bytes_per_sec(&self) -> f64 {
        self.dram_bytes_per_cycle() * self.clock_hz
    }

    /// Maximum batch size supported by the per-PE scratch.
    pub fn max_batch(&self) -> usize {
        self.scratch_entries
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiles == 0 || self.pes_per_tile == 0 {
            return Err("tile/PE counts must be positive".into());
        }
        if self.weights_per_cycle == 0 {
            return Err("weight bandwidth must be positive".into());
        }
        if self.clock_hz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.scratch_entries == 0 {
            return Err("scratch must hold at least one batch entry".into());
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_matches_reported_numbers() {
        let a = ArchConfig::paper();
        assert_eq!(a.total_pes(), 192);
        // 192 PEs × 2 ops × 200 MHz = 76.8 GOPS (Section III-C).
        assert!((a.peak_gops() - 76.8).abs() < 1e-9);
        // 24 + 1 bytes per cycle at 200 MHz = 5 GB/s payload out of the
        // 6.4 GB/s LPDDR4 pin bandwidth (rest: offsets, c-state, refresh).
        assert!((a.dram_bytes_per_sec() - 5.0e9).abs() < 1e6);
        assert_eq!(a.max_batch(), 16);
    }

    #[test]
    fn pipeline_depth_is_eight_for_paper() {
        // 192 PEs / 24 weights per cycle = 8: batch 8 saturates the array,
        // matching Fig. 8's identical dense GOPS at batches 8 and 16.
        assert_eq!(ArchConfig::paper().pipeline_depth(), 8);
    }

    #[test]
    fn validate_accepts_paper_and_rejects_zeroes() {
        assert!(ArchConfig::paper().validate().is_ok());
        let mut bad = ArchConfig::paper();
        bad.weights_per_cycle = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ArchConfig::default(), ArchConfig::paper());
    }
}
