//! End-to-end hardware execution: run a real quantized model through the
//! accelerator and get *both* its outputs and its timing/energy report
//! from the same encoded states.
//!
//! [`Simulator`](crate::Simulator) answers "how fast would a workload
//! with this sparsity run"; [`FunctionalAccelerator`] answers "what are
//! the exact output bits". [`HardwareExecutor`] glues them: each
//! timestep, the current batch of hidden states is offset-encoded, the
//! *actual* stored-column count (anchors included) is charged to the
//! timing and traffic models, and the functional tiles compute the next
//! states. The resulting report is therefore driven by the model's true
//! dynamic sparsity, not a synthetic profile.

use crate::arch::ArchConfig;
use crate::dataflow::{DataflowModel, StepTraffic};
use crate::energy::EnergyModel;
use crate::functional::{FunctionalAccelerator, LaneState};
use crate::sim::SimReport;
use crate::workload::{InputKind, LstmWorkload};
use zskip_core::QuantizedLstm;

/// Result of executing a sequence on the simulated hardware.
#[derive(Clone, Debug)]
pub struct ExecutionResult {
    /// Per-step lane states (`steps × lanes`).
    pub states: Vec<Vec<LaneState>>,
    /// Timing/energy report computed from the actual encoded states.
    pub report: SimReport,
    /// Stored-column count per step (anchors included).
    pub stored_columns: Vec<usize>,
}

impl ExecutionResult {
    /// Final lane states.
    ///
    /// # Panics
    ///
    /// Panics if the execution was empty.
    pub fn final_states(&self) -> &[LaneState] {
        self.states.last().expect("empty execution")
    }

    /// Mean fraction of state columns skipped across the run.
    pub fn mean_skipped_fraction(&self, dh: usize) -> f64 {
        if self.stored_columns.is_empty() {
            return 0.0;
        }
        let stored: usize = self.stored_columns.iter().sum();
        1.0 - stored as f64 / (dh * self.stored_columns.len()) as f64
    }
}

/// Executes quantized LSTMs on the modeled accelerator.
///
/// # Example
///
/// ```
/// use zskip_accel::{HardwareExecutor, InputKind};
/// use zskip_core::QuantizedLstm;
/// use zskip_nn::LstmCell;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let cell = LstmCell::new(4, 16, &mut rng);
/// let q = QuantizedLstm::from_cell(&cell, 0.2);
/// let exec = HardwareExecutor::paper(q.clone(), InputKind::Dense);
/// let inputs = vec![vec![q.quantize_input(&[0.5, -0.5, 0.25, 0.0]); 2]; 6];
/// let run = exec.execute(&inputs);
/// assert_eq!(run.states.len(), 6);
/// assert!(run.report.cycles > 0);
/// ```
#[derive(Clone, Debug)]
pub struct HardwareExecutor {
    functional: FunctionalAccelerator,
    dataflow: DataflowModel,
    energy: EnergyModel,
    input_kind: InputKind,
}

impl HardwareExecutor {
    /// Executor at the paper's design point.
    pub fn paper(model: QuantizedLstm, input_kind: InputKind) -> Self {
        Self::new(
            model,
            input_kind,
            ArchConfig::paper(),
            EnergyModel::calibrated_65nm(),
        )
    }

    /// Executor with explicit architecture and energy models.
    ///
    /// # Panics
    ///
    /// Panics if the architecture fails validation.
    pub fn new(
        model: QuantizedLstm,
        input_kind: InputKind,
        arch: ArchConfig,
        energy: EnergyModel,
    ) -> Self {
        Self {
            functional: FunctionalAccelerator::new(model),
            dataflow: DataflowModel::new(arch),
            energy,
            input_kind,
        }
    }

    /// The wrapped quantized model.
    pub fn model(&self) -> &QuantizedLstm {
        self.functional.model()
    }

    /// Runs a sequence (`inputs[t][lane]` = quantized input codes) from
    /// zero state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty/ragged or the lane count exceeds the
    /// scratch capacity.
    pub fn execute(&self, inputs: &[Vec<Vec<i8>>]) -> ExecutionResult {
        assert!(!inputs.is_empty(), "empty sequence");
        let lanes = inputs[0].len();
        let arch = self.dataflow.arch();
        assert!(
            lanes <= arch.max_batch(),
            "batch {lanes} exceeds scratch capacity {}",
            arch.max_batch()
        );
        let dh = self.model().hidden_dim();
        let dx = self.model().input_dim();
        let workload = LstmWorkload {
            dh,
            dx,
            input: self.input_kind,
            seq_len: inputs.len(),
            batch: lanes,
        };
        workload.validate().expect("invalid derived workload");

        let mut lane_states = vec![
            LaneState {
                h: vec![0; dh],
                c: vec![0; dh],
            };
            lanes
        ];
        let mut states = Vec::with_capacity(inputs.len());
        let mut stored_columns = Vec::with_capacity(inputs.len());
        let mut cycles = 0u64;
        let mut traffic = StepTraffic::default();
        let mut macs = 0u64;

        for step_inputs in inputs {
            assert_eq!(step_inputs.len(), lanes, "ragged lane count");
            // Encode the *current* states: this is what the hardware reads
            // back and what determines this step's skippable columns.
            let lanes_h: Vec<Vec<i8>> = lane_states.iter().map(|s| s.h.clone()).collect();
            let encoded = self.functional.encode_state(&lanes_h);
            let stored = encoded.stored_columns();
            stored_columns.push(stored);

            let t = self.dataflow.step_cycles(&workload, stored);
            cycles += t.total();
            let tr = self.dataflow.step_traffic(&workload, stored);
            traffic.weight_bytes += tr.weight_bytes;
            traffic.state_in_bytes += tr.state_in_bytes;
            traffic.state_out_bytes += tr.state_out_bytes;
            traffic.cell_bytes += tr.cell_bytes;
            macs += (stored * 4 * dh * lanes) as u64;

            lane_states = self.functional.step_batch(step_inputs, &lane_states);
            states.push(lane_states.clone());
        }

        let seconds = cycles as f64 / arch.clock_hz;
        let effective_gops = workload.total_ops() as f64 / seconds / 1e9;
        let energy_joules = self.energy.energy_joules(&traffic, macs, seconds);
        let avg_power_watts = energy_joules / seconds;
        let total_stored: usize = stored_columns.iter().sum();
        let report = SimReport {
            workload,
            cycles,
            seconds,
            effective_gops,
            utilization: macs as f64 / (arch.total_pes() as f64 * cycles as f64),
            traffic,
            macs,
            energy_joules,
            avg_power_watts,
            gops_per_watt: effective_gops / avg_power_watts,
            mean_skippable: 1.0 - total_stored as f64 / (dh * stored_columns.len()) as f64,
        };
        ExecutionResult {
            states,
            report,
            stored_columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_nn::LstmCell;
    use zskip_tensor::SeedableStream;

    fn executor(threshold: f32, seed: u64) -> HardwareExecutor {
        let mut rng = SeedableStream::new(seed);
        let cell = LstmCell::new(6, 32, &mut rng);
        let q = QuantizedLstm::from_cell(&cell, threshold);
        HardwareExecutor::paper(q, InputKind::Dense)
    }

    fn inputs(exec: &HardwareExecutor, steps: usize, lanes: usize, seed: u64) -> Vec<Vec<Vec<i8>>> {
        let mut rng = SeedableStream::new(seed);
        (0..steps)
            .map(|_| {
                (0..lanes)
                    .map(|_| {
                        let x: Vec<f32> = (0..exec.model().input_dim())
                            .map(|_| rng.uniform(-1.0, 1.0))
                            .collect();
                        exec.model().quantize_input(&x)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn outputs_match_pure_functional_path() {
        let exec = executor(0.2, 1);
        let ins = inputs(&exec, 10, 3, 2);
        let run = exec.execute(&ins);
        let pure = FunctionalAccelerator::new(exec.model().clone()).run_sequence(&ins);
        assert_eq!(run.final_states(), &pure[..]);
    }

    #[test]
    fn pruned_model_runs_faster_than_dense_model() {
        let dense = executor(0.0, 3);
        let pruned = executor(0.35, 3); // same weights, same seed
        let ins_d = inputs(&dense, 16, 4, 4);
        let ins_p = inputs(&pruned, 16, 4, 4);
        let run_d = dense.execute(&ins_d);
        let run_p = pruned.execute(&ins_p);
        assert!(
            run_p.report.cycles < run_d.report.cycles,
            "pruned {} !< dense {}",
            run_p.report.cycles,
            run_d.report.cycles
        );
        assert!(run_p.report.energy_joules < run_d.report.energy_joules);
        assert!(run_p.mean_skipped_fraction(32) > 0.1);
    }

    #[test]
    fn first_step_is_fully_skippable_from_zero_state() {
        // Threshold 0 so later steps are guaranteed to have survivors.
        let exec = executor(0.0, 5);
        let ins = inputs(&exec, 3, 2, 6);
        let run = exec.execute(&ins);
        // Initial h is all zeros → no stored columns at step 0 (8-bit
        // offsets over dh=32 never saturate).
        assert_eq!(run.stored_columns[0], 0);
        assert!(run.stored_columns[1] > 0);
    }

    #[test]
    fn report_sparsity_matches_stored_columns() {
        let exec = executor(0.25, 7);
        let ins = inputs(&exec, 12, 2, 8);
        let run = exec.execute(&ins);
        let expect = run.mean_skipped_fraction(32);
        assert!((run.report.mean_skippable - expect).abs() < 1e-12);
    }
}
