//! Phase-level timing and traffic model of the recurrent dataflow
//! (Section III-A, Fig. 5).
//!
//! Each state column `j` requires the `j`-th weight column of all four
//! gate matrices (`4·dh` weights) and contributes `4·dh·B` MACs. With
//! `W` weights arriving per cycle and `P` PEs total, a stored column costs
//!
//! ```text
//! max( ⌈4·dh / W⌉ ,  ⌈4·dh·B / P⌉ ,  B )      cycles
//! ```
//!
//! — the bandwidth term dominates for small batches (Fig. 5b, 12.5%
//! utilization at B = 1 on the paper's design), the compute term for
//! large ones, and the `B` term accounts for the one-input-per-cycle
//! stream. Skippable columns cost nothing: the offset encoding lets the
//! controller address only the weights of stored columns.
//!
//! The per-timestep phases are: the skippable `Wh` GEMV, the unskippable
//! `Wx` contribution (lookup for one-hot, full GEMV for dense inputs),
//! and the element-wise tail of Eq. 2–3 (which streams `c[t-1]` from DRAM
//! and writes `c[t]` and the encoded `h[t]` back). Pipeline fill adds one
//! `pipeline_depth` latency per GEMV phase.

use crate::arch::ArchConfig;
use crate::trace::SkipTrace;
use crate::workload::{InputKind, LstmWorkload};
use serde::{Deserialize, Serialize};

/// Cycle counts of one timestep, by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCycles {
    /// Recurrent `Wh·h` GEMV over stored columns.
    pub wh: u64,
    /// Input contribution `Wx·x`.
    pub wx: u64,
    /// Element-wise Eq. 2–3 incl. state streaming.
    pub pointwise: u64,
    /// Pipeline fill for the GEMV phases.
    pub fill: u64,
}

impl StepCycles {
    /// Total cycles of the step.
    pub fn total(&self) -> u64 {
        self.wh + self.wx + self.pointwise + self.fill
    }
}

/// DRAM byte counts of one timestep, by stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTraffic {
    /// Weight fetches (`Wh` stored columns + `Wx`).
    pub weight_bytes: u64,
    /// Encoded state read (offsets + lane values) and raw input fetch.
    pub state_in_bytes: u64,
    /// Encoded state writeback.
    pub state_out_bytes: u64,
    /// Cell-state read + write (dense, `B·dh` each way).
    pub cell_bytes: u64,
}

impl StepTraffic {
    /// Total bytes moved in the step.
    pub fn total(&self) -> u64 {
        self.weight_bytes + self.state_in_bytes + self.state_out_bytes + self.cell_bytes
    }
}

/// The analytic dataflow model for a given architecture.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowModel {
    arch: ArchConfig,
}

impl DataflowModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the architecture fails validation.
    pub fn new(arch: ArchConfig) -> Self {
        arch.validate().expect("invalid architecture");
        Self { arch }
    }

    /// The architecture being modeled.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Cycles to process one stored state column at batch `b` for hidden
    /// width `dh` (see module docs for the three terms).
    ///
    /// The compute term works at *weight-group* granularity: the last
    /// group of a column may be partially filled, and its idle PE slots
    /// cannot be reclaimed, so the cost is
    /// `⌈⌈4dh/W⌉ · B / (P/W)⌉` rather than the idealized `⌈4dh·B/P⌉`.
    pub fn column_cycles(&self, dh: usize, b: usize) -> u64 {
        let weights = 4 * dh;
        let groups = weights.div_ceil(self.arch.weights_per_cycle);
        let pe_groups = self.arch.total_pes().div_ceil(self.arch.weights_per_cycle);
        let bw = groups as u64;
        let compute = (groups * b).div_ceil(pe_groups) as u64;
        bw.max(compute).max(b as u64)
    }

    /// Cycles of the `Wx` phase.
    pub fn wx_cycles(&self, w: &LstmWorkload) -> u64 {
        let weights = 4 * w.dh;
        match w.input {
            // One row of Wx per lane (lanes generally index different
            // rows), bandwidth-bound.
            InputKind::OneHot => (w.batch * weights.div_ceil(self.arch.weights_per_cycle)) as u64,
            // Full GEMV over dx never-skippable columns.
            InputKind::Dense => w.dx as u64 * self.column_cycles(w.dh, w.batch),
            // One column.
            InputKind::Scalar => self.column_cycles(w.dh, w.batch),
        }
    }

    /// Cycles of the element-wise tail: max of the DRAM stream for
    /// `c[t-1]`/`c[t]`/encoded `h[t]` and the PE time for `4·dh·B`
    /// element-wise operations.
    pub fn pointwise_cycles(&self, w: &LstmWorkload, stored_cols: usize) -> u64 {
        let bytes = 2 * w.batch * w.dh // c in + out
            + stored_cols * (1 + w.batch); // encoded h out
        let bw = (bytes as f64 / self.arch.dram_bytes_per_cycle()).ceil() as u64;
        let compute = (4 * w.dh * w.batch).div_ceil(self.arch.total_pes()) as u64;
        bw.max(compute)
    }

    /// Timing of one timestep with `stored_cols` stored state columns.
    pub fn step_cycles(&self, w: &LstmWorkload, stored_cols: usize) -> StepCycles {
        StepCycles {
            wh: stored_cols as u64 * self.column_cycles(w.dh, w.batch),
            wx: self.wx_cycles(w),
            pointwise: self.pointwise_cycles(w, stored_cols),
            fill: 2 * self.arch.pipeline_depth() as u64,
        }
    }

    /// Traffic of one timestep with `stored_cols` stored state columns.
    pub fn step_traffic(&self, w: &LstmWorkload, stored_cols: usize) -> StepTraffic {
        let wx_weight_bytes = match w.input {
            InputKind::OneHot => w.batch * 4 * w.dh,
            InputKind::Dense => w.dx * 4 * w.dh,
            InputKind::Scalar => 4 * w.dh,
        } as u64;
        let x_in_bytes = match w.input {
            InputKind::OneHot => w.batch as u64, // one index byte per lane
            InputKind::Dense => (w.batch * w.dx) as u64,
            InputKind::Scalar => w.batch as u64,
        };
        let encoded = (stored_cols * (1 + w.batch)) as u64;
        StepTraffic {
            weight_bytes: (stored_cols * 4 * w.dh) as u64 + wx_weight_bytes,
            state_in_bytes: encoded + x_in_bytes,
            state_out_bytes: encoded,
            cell_bytes: 2 * (w.batch * w.dh) as u64,
        }
    }

    /// Sums timing and traffic over a whole [`SkipTrace`], returning
    /// `(cycles, traffic, macs_performed)`.
    ///
    /// # Panics
    ///
    /// Panics if the trace width differs from `w.dh`, the trace length
    /// from `w.seq_len`, or the batch exceeds the scratch capacity.
    pub fn run(&self, w: &LstmWorkload, trace: &SkipTrace) -> (u64, StepTraffic, u64) {
        w.validate().expect("invalid workload");
        assert_eq!(trace.dh(), w.dh, "trace width mismatch");
        assert_eq!(trace.len(), w.seq_len, "trace length mismatch");
        assert!(
            w.batch <= self.arch.max_batch(),
            "batch {} exceeds scratch capacity {}",
            w.batch,
            self.arch.max_batch()
        );
        let stored = trace.stored_columns(self.arch.offset_bits);
        let mut cycles = 0u64;
        let mut traffic = StepTraffic::default();
        let mut macs = 0u64;
        for &cols in &stored {
            let t = self.step_cycles(w, cols);
            cycles += t.total();
            let tr = self.step_traffic(w, cols);
            traffic.weight_bytes += tr.weight_bytes;
            traffic.state_in_bytes += tr.state_in_bytes;
            traffic.state_out_bytes += tr.state_out_bytes;
            traffic.cell_bytes += tr.cell_bytes;
            // MACs actually performed: stored columns of Wh plus the Wx
            // contribution (lookup rows are adds; count them as MACs for
            // energy purposes) plus the element-wise tail.
            let wh_macs = (cols * 4 * w.dh * w.batch) as u64;
            let wx_macs = match w.input {
                InputKind::OneHot => (4 * w.dh * w.batch) as u64,
                InputKind::Dense => (w.dx * 4 * w.dh * w.batch) as u64,
                InputKind::Scalar => (4 * w.dh * w.batch) as u64,
            };
            let pw_macs = (4 * w.dh * w.batch) as u64;
            macs += wh_macs + wx_macs + pw_macs;
        }
        (cycles, traffic, macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DataflowModel {
        DataflowModel::new(ArchConfig::paper())
    }

    #[test]
    fn column_cycles_match_hand_derivation() {
        let m = model();
        // dh=1000: 4000 weights / 24 per cycle = 167 cycles, bandwidth-bound
        // at B=1; exactly balanced at B=8; compute-bound (334) at B=16.
        assert_eq!(m.column_cycles(1000, 1), 167);
        assert_eq!(m.column_cycles(1000, 8), 167);
        assert_eq!(m.column_cycles(1000, 16), 334);
    }

    #[test]
    fn dense_utilization_by_batch_matches_paper() {
        // Fig. 8 dense bars: 9.6 GOPS at B=1 (12.5% of 76.8), ≈76.4 at
        // B=8 and B=16 for PTB-char.
        let m = model();
        let w1 = LstmWorkload::ptb_char(1);
        let trace = SkipTrace::dense(w1.dh, w1.seq_len);
        let (cycles, _, _) = m.run(&w1, &trace);
        let seconds = cycles as f64 / m.arch().clock_hz;
        let gops = w1.total_ops() as f64 / seconds / 1e9;
        assert!((gops - 9.6).abs() < 0.3, "B=1 dense GOPS {gops}");

        let w8 = LstmWorkload::ptb_char(8);
        let (cycles, _, _) = m.run(&w8, &trace);
        let gops8 = w8.total_ops() as f64 / (cycles as f64 / m.arch().clock_hz) / 1e9;
        assert!((gops8 - 76.4).abs() < 1.5, "B=8 dense GOPS {gops8}");

        let w16 = LstmWorkload::ptb_char(16);
        let (cycles, _, _) = m.run(&w16, &trace);
        let gops16 = w16.total_ops() as f64 / (cycles as f64 / m.arch().clock_hz) / 1e9;
        assert!((gops16 - 76.4).abs() < 1.5, "B=16 dense GOPS {gops16}");
    }

    #[test]
    fn skipping_reduces_cycles_proportionally() {
        let m = model();
        let w = LstmWorkload::ptb_char(8);
        let dense = SkipTrace::dense(w.dh, w.seq_len);
        let sparse = SkipTrace::from_profile(
            w.dh,
            w.seq_len,
            w.batch,
            crate::trace::SparsityProfile::new(0.81, 0.0),
            3,
        );
        let (dc, _, _) = m.run(&w, &dense);
        let (sc, _, _) = m.run(&w, &sparse);
        let speedup = dc as f64 / sc as f64;
        // 81% skippable on a ~99% skippable-dominated workload → ≈5×.
        assert!(speedup > 4.2 && speedup < 5.5, "speedup {speedup}");
    }

    #[test]
    fn word_task_speedup_is_capped_by_dense_wx() {
        let m = model();
        let w = LstmWorkload::ptb_word(8);
        let dense = SkipTrace::dense(w.dh, w.seq_len);
        let sparse = SkipTrace::from_profile(
            w.dh,
            w.seq_len,
            w.batch,
            crate::trace::SparsityProfile::new(0.63, 0.0),
            4,
        );
        let (dc, _, _) = m.run(&w, &dense);
        let (sc, _, _) = m.run(&w, &sparse);
        let speedup = dc as f64 / sc as f64;
        // Paper: 110.8 / 76.2 ≈ 1.45×.
        assert!(speedup > 1.3 && speedup < 1.6, "speedup {speedup}");
    }

    #[test]
    fn traffic_scales_with_stored_columns() {
        let m = model();
        let w = LstmWorkload::ptb_char(8);
        let dense = m.step_traffic(&w, w.dh);
        let sparse = m.step_traffic(&w, w.dh / 10);
        assert!(sparse.weight_bytes < dense.weight_bytes / 5);
        // Cell traffic is dense either way.
        assert_eq!(sparse.cell_bytes, dense.cell_bytes);
    }

    #[test]
    fn batch_beyond_scratch_panics() {
        let m = model();
        let w = LstmWorkload::ptb_char(32);
        let trace = SkipTrace::dense(w.dh, w.seq_len);
        let result = std::panic::catch_unwind(|| m.run(&w, &trace));
        assert!(result.is_err());
    }

    #[test]
    fn pointwise_phase_is_minor_for_char() {
        let m = model();
        let w = LstmWorkload::ptb_char(8);
        let t = m.step_cycles(&w, w.dh);
        let overhead = (t.pointwise + t.wx + t.fill) as f64 / t.total() as f64;
        assert!(overhead < 0.02, "overhead fraction {overhead}");
    }
}
