//! Cycle-level simulator of the zero-state-skipping LSTM accelerator
//! (Section III of the DATE 2019 paper).
//!
//! Three complementary models, cross-validated by the test suite:
//!
//! * **Timing/traffic** — [`DataflowModel`](dataflow::DataflowModel)
//!   charges each *stored* state column its bandwidth/compute/input cost
//!   and skips all-lane-zero columns outright; validated against the
//!   cycle-stepped pipeline of [`GemvPipelineSim`](cycle::GemvPipelineSim)
//!   (Fig. 5's dataflow at single-cycle granularity).
//! * **Energy/area** — [`energy::EnergyModel`] and
//!   [`area::AreaModel`], calibrated to the paper's reported
//!   operating points (1.1 mm², 76.8 GOPS peak, 925.3 GOPS/W dense).
//! * **Functional** — [`FunctionalAccelerator`], a tile-by-tile 8-bit
//!   datapath that is bit-identical to the
//!   [`QuantizedLstm`](zskip_core::QuantizedLstm) reference (integer
//!   accumulation is order-independent, so offset-addressed sparse
//!   evaluation cannot change results).
//!
//! # Example
//!
//! ```
//! use zskip_accel::{LstmWorkload, Simulator, SkipTrace, SparsityProfile};
//!
//! let sim = Simulator::paper();
//! let w = LstmWorkload::ptb_char(8);
//! let dense = sim.run_dense(&w);
//! let trace = SkipTrace::from_profile(
//!     w.dh, w.seq_len, w.batch, SparsityProfile::new(0.81, 0.0), 42);
//! let sparse = sim.run(&w, &trace);
//! assert!(sparse.speedup_over(&dense) > 4.0);
//! ```

pub mod arch;
pub mod area;
pub mod cycle;
pub mod dataflow;
pub mod energy;
pub mod executor;
pub mod functional;
pub mod sim;
pub mod trace;
pub mod workload;

pub use arch::ArchConfig;
pub use area::AreaModel;
pub use energy::EnergyModel;
pub use executor::{ExecutionResult, HardwareExecutor};
pub use functional::{FunctionalAccelerator, LaneState, ScratchPrecision};
pub use sim::{SimReport, Simulator};
pub use trace::{SkipTrace, SparsityProfile};
pub use workload::{InputKind, LstmWorkload};
