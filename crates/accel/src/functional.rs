//! Bit-accurate functional simulation of the accelerator datapath.
//!
//! The four tiles of Fig. 6 each own one gate: tiles 1–3 end in sigmoid
//! units, tile 4 in tanh. The recurrent GEMV iterates only over the
//! *stored* columns of the encoded state (offset addressing, Section
//! III-B); because skipped columns hold zero codes in every lane, the
//! integer accumulators are identical to a dense evaluation — this module
//! proves that by re-implementing the computation tile-by-tile and the
//! test suite asserts bit-equality against
//! [`zskip_core::QuantizedLstm`].
//!
//! The optional [`ScratchPrecision`] models the 16×12-bit per-PE scratch:
//! partial sums are requantized to the scratch format every
//! `write_period` stored columns (between batch-interleaved bursts the
//! partial lives in the narrow SRAM word, not in the PE's wide
//! accumulator). The paper leaves the scratch scaling unspecified; see
//! DESIGN.md for the reconstruction and the benches for its accuracy
//! ablation.

use crate::arch::ArchConfig;
use zskip_core::encode::EncodedState;
use zskip_core::{OffsetEncoder, QuantizedLstm};
use zskip_tensor::QFormat;

/// Scratch-memory precision model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScratchPrecision {
    /// Fixed-point format of a scratch word (the paper's hardware:
    /// 12 bits).
    pub format: QFormat,
    /// Real value of one accumulator LSB (i.e. the product scale
    /// `w_scale · h_scale`) — needed to map the integer accumulator into
    /// the scratch format.
    pub acc_lsb: f32,
    /// Stored columns processed between scratch writebacks.
    pub write_period: usize,
}

/// One lane's functional state between timesteps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneState {
    /// Hidden-state codes (pruned).
    pub h: Vec<i8>,
    /// Cell-state codes.
    pub c: Vec<i8>,
}

/// Functional model of the accelerator running a quantized LSTM.
///
/// # Example
///
/// ```
/// use zskip_accel::FunctionalAccelerator;
/// use zskip_core::QuantizedLstm;
/// use zskip_nn::LstmCell;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let cell = LstmCell::new(4, 8, &mut rng);
/// let q = QuantizedLstm::from_cell(&cell, 0.1);
/// let accel = FunctionalAccelerator::new(q);
/// let x = accel.model().quantize_input(&[0.3, -0.5, 0.9, 0.0]);
/// let out = accel.run_sequence(&[vec![x]]);
/// assert_eq!(out[0].h.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct FunctionalAccelerator {
    model: QuantizedLstm,
    arch: ArchConfig,
    scratch: Option<ScratchPrecision>,
}

impl FunctionalAccelerator {
    /// Wraps a quantized model with the paper's architecture and an exact
    /// (lossless) accumulator.
    pub fn new(model: QuantizedLstm) -> Self {
        Self {
            model,
            arch: ArchConfig::paper(),
            scratch: None,
        }
    }

    /// Enables the lossy scratch-precision model.
    pub fn with_scratch_precision(mut self, scratch: ScratchPrecision) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// The wrapped quantized model.
    pub fn model(&self) -> &QuantizedLstm {
        &self.model
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Encodes a batch of hidden-state lanes with the hardware encoder.
    pub fn encode_state(&self, lanes: &[Vec<i8>]) -> EncodedState {
        OffsetEncoder::new(self.arch.offset_bits).encode(lanes)
    }

    /// Computes the recurrent accumulators for one lane from the encoded
    /// state, iterating only over stored columns (offset addressing).
    ///
    /// With `scratch: None` the result is bit-identical to the dense
    /// `gemv_t_i32`; with a scratch model, partials round-trip through the
    /// narrow format every `write_period` columns.
    pub fn recurrent_accumulators(&self, encoded: &EncodedState, lane: usize) -> Vec<i32> {
        let dh = self.model.hidden_dim();
        let wh = self.model.wh();
        let mut acc = vec![0i32; 4 * dh];
        let mut since_write = 0usize;
        for col in encoded.columns() {
            let v = col.values[lane] as i32;
            if v != 0 {
                // Each tile's PEs accumulate its gate block; algebraically
                // one loop over the 4·dh flat index.
                let row = wh.row(col.index);
                for (a, w) in acc.iter_mut().zip(row) {
                    *a += *w as i32 * v;
                }
            }
            since_write += 1;
            if let Some(s) = &self.scratch {
                if since_write >= s.write_period {
                    for a in acc.iter_mut() {
                        *a = scratch_round_trip(*a, s);
                    }
                    since_write = 0;
                }
            }
        }
        acc
    }

    /// Runs one timestep for a batch of lanes.
    ///
    /// `x_codes[lane]` is the quantized input for each lane; `states` are
    /// the lanes' previous states. Tiles 1–3 apply sigmoid to the f/i/o
    /// blocks, tile 4 tanh to g; the element-wise tail (Eq. 2–3, pruning,
    /// storage quantization) is shared bit-for-bit with the reference
    /// model.
    ///
    /// # Panics
    ///
    /// Panics on lane-count or length mismatches.
    pub fn step_batch(&self, x_codes: &[Vec<i8>], states: &[LaneState]) -> Vec<LaneState> {
        assert_eq!(x_codes.len(), states.len(), "lane count mismatch");
        assert!(!states.is_empty(), "need at least one lane");
        let dh = self.model.hidden_dim();
        let lanes: Vec<Vec<i8>> = states.iter().map(|s| s.h.clone()).collect();
        let encoded = self.encode_state(&lanes);

        let mut out = Vec::with_capacity(states.len());
        for (lane, state) in states.iter().enumerate() {
            let acc_h = self.recurrent_accumulators(&encoded, lane);
            let acc_x = self.model.wx().gemv_t_i32(&x_codes[lane]);
            let mut h_new = vec![0i8; dh];
            let mut c_new = vec![0i8; dh];
            for j in 0..dh {
                // Tile t computes gate t at element j.
                let gate_val = |gate: usize| {
                    let k = gate * dh + j;
                    self.model
                        .activation(gate, self.model.preactivation(k, acc_x[k], acc_h[k]))
                };
                let f = gate_val(0);
                let i = gate_val(1);
                let o = gate_val(2);
                let g = gate_val(3);
                let (h_code, c_code) = self.model.pointwise(f, i, o, g, state.c[j]);
                h_new[j] = h_code;
                c_new[j] = c_code;
            }
            out.push(LaneState { h: h_new, c: c_new });
        }
        out
    }

    /// Runs a full sequence from zero state. `inputs[t][lane]` holds the
    /// quantized input of each lane at step `t`; returns the final lane
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or ragged.
    pub fn run_sequence(&self, inputs: &[Vec<Vec<i8>>]) -> Vec<LaneState> {
        assert!(!inputs.is_empty(), "empty sequence");
        let lanes = inputs[0].len();
        let dh = self.model.hidden_dim();
        let mut states = vec![
            LaneState {
                h: vec![0; dh],
                c: vec![0; dh],
            };
            lanes
        ];
        for step in inputs {
            assert_eq!(step.len(), lanes, "ragged lane count");
            states = self.step_batch(step, &states);
        }
        states
    }
}

/// Rounds an `i32` accumulator through the scratch format and back.
fn scratch_round_trip(acc: i32, s: &ScratchPrecision) -> i32 {
    // Map accumulator LSBs to real value, store in the scratch format,
    // read back out. acc_real = acc · acc_lsb.
    let real = acc as f32 * s.acc_lsb;
    let stored = s.format.from_f32(real);
    (stored.to_f32() / s.acc_lsb).round() as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_nn::LstmCell;
    use zskip_tensor::SeedableStream;

    fn quantized(seed: u64, dx: usize, dh: usize, threshold: f32) -> QuantizedLstm {
        let mut rng = SeedableStream::new(seed);
        let cell = LstmCell::new(dx, dh, &mut rng);
        QuantizedLstm::from_cell(&cell, threshold)
    }

    fn random_inputs(
        q: &QuantizedLstm,
        steps: usize,
        lanes: usize,
        seed: u64,
    ) -> Vec<Vec<Vec<i8>>> {
        let mut rng = SeedableStream::new(seed);
        (0..steps)
            .map(|_| {
                (0..lanes)
                    .map(|_| {
                        let x: Vec<f32> =
                            (0..q.input_dim()).map(|_| rng.uniform(-1.0, 1.0)).collect();
                        q.quantize_input(&x)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn functional_matches_reference_bit_for_bit() {
        let q = quantized(1, 5, 24, 0.15);
        let accel = FunctionalAccelerator::new(q.clone());
        let inputs = random_inputs(&q, 12, 3, 2);

        let accel_out = accel.run_sequence(&inputs);
        // Reference: run each lane independently through QuantizedLstm.
        for lane in 0..3 {
            let lane_inputs: Vec<Vec<i8>> = inputs.iter().map(|s| s[lane].clone()).collect();
            let ref_steps = q.run_sequence(&lane_inputs);
            let last = ref_steps.last().expect("non-empty");
            assert_eq!(accel_out[lane].h, last.h, "lane {lane} h mismatch");
            assert_eq!(accel_out[lane].c, last.c, "lane {lane} c mismatch");
        }
    }

    #[test]
    fn offset_addressing_never_changes_results() {
        // A 2-bit offset forces many anchors; results must still be exact.
        let q = quantized(3, 4, 16, 0.3);
        let mut accel = FunctionalAccelerator::new(q.clone());
        accel.arch.offset_bits = 2;
        let inputs = random_inputs(&q, 8, 2, 4);
        let out_narrow = accel.run_sequence(&inputs);
        let wide = FunctionalAccelerator::new(q);
        let out_wide = wide.run_sequence(&inputs);
        assert_eq!(out_narrow, out_wide);
    }

    #[test]
    fn scratch_precision_is_lossy_but_bounded() {
        let q = quantized(5, 4, 32, 0.1);
        let exact = FunctionalAccelerator::new(q.clone());
        let acc_lsb = q.h_acc_scale();
        let lossy =
            FunctionalAccelerator::new(q.clone()).with_scratch_precision(ScratchPrecision {
                format: QFormat::new(12, 7),
                acc_lsb,
                write_period: 8,
            });
        let inputs = random_inputs(&q, 6, 1, 6);
        let a = exact.run_sequence(&inputs);
        let b = lossy.run_sequence(&inputs);
        // Not necessarily identical...
        let hq = q.h_quantizer();
        let max_err = a[0]
            .h
            .iter()
            .zip(&b[0].h)
            .map(|(x, y)| (hq.dequantize(*x) - hq.dequantize(*y)).abs())
            .fold(0.0f32, f32::max);
        // ...but within a few state LSBs.
        assert!(max_err < 0.1, "scratch error too large: {max_err}");
    }

    #[test]
    fn pruned_model_state_is_sparse_on_hardware() {
        let q = quantized(7, 4, 48, 0.35);
        let accel = FunctionalAccelerator::new(q.clone());
        let inputs = random_inputs(&q, 10, 4, 8);
        let out = accel.run_sequence(&inputs);
        let zeros: usize = out
            .iter()
            .map(|s| s.h.iter().filter(|v| **v == 0).count())
            .sum();
        let total = out.len() * q.hidden_dim();
        assert!(
            zeros as f64 / total as f64 > 0.3,
            "expected sparsity, got {}/{total}",
            zeros
        );
    }

    #[test]
    fn encoder_matches_state_sparsity() {
        let q = quantized(9, 3, 40, 0.3);
        let accel = FunctionalAccelerator::new(q.clone());
        let inputs = random_inputs(&q, 5, 2, 10);
        let states = accel.run_sequence(&inputs);
        let lanes: Vec<Vec<i8>> = states.iter().map(|s| s.h.clone()).collect();
        let encoded = accel.encode_state(&lanes);
        let joint_zero = (0..q.hidden_dim())
            .filter(|j| lanes.iter().all(|l| l[*j] == 0))
            .count();
        assert_eq!(
            encoded.skipped_columns() + encoded.anchor_columns(),
            joint_zero
        );
    }
}
