//! Skip traces: which state columns are skippable at each timestep.
//!
//! The timing simulator only needs to know, per timestep, which columns of
//! the state vector were all-lane zero (skippable) — not the values. A
//! [`SkipTrace`] can be built three ways:
//!
//! * [`SkipTrace::from_state_trace`] — from real hidden-state traces
//!   produced by `zskip-core`'s trained models (the authentic pipeline),
//! * [`SkipTrace::from_profile`] — from a two-component statistical model
//!   ([`SparsityProfile`]: a *dead-unit* fraction that is zero in every
//!   lane plus an i.i.d. dynamic zero rate), which reproduces the paper's
//!   Fig. 7 sparsity-vs-batch curves and drives the Fig. 8/9 reproduction
//!   at paper scale,
//! * [`SkipTrace::dense`] — no skippable columns (the dense baseline).

use serde::{Deserialize, Serialize};
use zskip_tensor::{Matrix, SeedableStream};

/// Statistical sparsity model: a fraction `dead` of units is zero in every
/// lane at every step; the remaining units are zero independently with
/// probability `dynamic` per lane per step.
///
/// Joint (batch-`B`) sparsity is then `dead + (1 - dead) · dynamicᴮ`,
/// which captures why Fig. 7's sparsity decays with batch size but far
/// more slowly than an independence assumption would predict.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsityProfile {
    /// Fraction of units that are always zero (unit-level death).
    pub dead: f64,
    /// Per-lane zero probability of live units.
    pub dynamic: f64,
}

impl SparsityProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics unless both fields are probabilities.
    pub fn new(dead: f64, dynamic: f64) -> Self {
        assert!((0.0..=1.0).contains(&dead), "dead must be in [0,1]");
        assert!((0.0..=1.0).contains(&dynamic), "dynamic must be in [0,1]");
        Self { dead, dynamic }
    }

    /// Expected joint sparsity at batch size `b`.
    pub fn joint_sparsity(&self, b: usize) -> f64 {
        self.dead + (1.0 - self.dead) * self.dynamic.powi(b as i32)
    }

    /// Fits the profile to two measured points: single-lane sparsity `p1`
    /// and joint sparsity `p_b` at batch size `b` (bisection on the dead
    /// fraction).
    ///
    /// The model spans joint sparsities between `p1ᵇ` (fully independent
    /// lanes, `dead = 0`) and `p1` (fully correlated, `dead = p1`);
    /// `p_b` outside that range is clamped to the nearest endpoint.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_b <= p1 < 1`.
    pub fn fit(p1: f64, p_b: f64, b: usize) -> Self {
        assert!(p_b <= p1 && p1 < 1.0 && p_b > 0.0, "need 0 < p_b <= p1 < 1");
        let p_b = p_b.clamp(p1.powi(b as i32), p1);
        let joint_for = |dead: f64| -> f64 {
            let dynamic = ((p1 - dead) / (1.0 - dead)).max(0.0);
            dead + (1.0 - dead) * dynamic.powi(b as i32)
        };
        let (mut lo, mut hi) = (0.0f64, p1);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if joint_for(mid) < p_b {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let dead = 0.5 * (lo + hi);
        let dynamic = ((p1 - dead) / (1.0 - dead)).clamp(0.0, 1.0);
        Self { dead, dynamic }
    }
}

/// Per-timestep skippable-column masks for one workload run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipTrace {
    dh: usize,
    steps: Vec<Vec<bool>>,
}

impl SkipTrace {
    /// A dense trace: nothing skippable.
    pub fn dense(dh: usize, steps: usize) -> Self {
        Self {
            dh,
            steps: vec![vec![false; dh]; steps],
        }
    }

    /// Builds the trace from real state matrices (`B × dh`, one per
    /// step): a column is skippable when all lanes are exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or shapes differ between steps.
    pub fn from_state_trace(trace: &[Matrix]) -> Self {
        assert!(!trace.is_empty(), "empty state trace");
        let dh = trace[0].cols();
        let steps = trace
            .iter()
            .map(|m| {
                assert_eq!(m.cols(), dh, "inconsistent state width");
                zskip_core::sparsity::joint_zero_columns(m)
            })
            .collect();
        Self { dh, steps }
    }

    /// Builds a trace with an *exact* skippable-column fraction per step
    /// (positions drawn by a seeded shuffle). Used to drive the simulator
    /// at a calibrated joint sparsity, e.g. the paper's Fig. 7 values.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `[0, 1]`.
    pub fn with_fraction(dh: usize, steps: usize, fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut rng = SeedableStream::new(seed);
        let k = (dh as f64 * fraction).round() as usize;
        let step_masks = (0..steps)
            .map(|_| {
                let mut mask = vec![false; dh];
                // Seeded partial Fisher–Yates: pick k distinct positions.
                let mut idx: Vec<usize> = (0..dh).collect();
                for i in 0..k.min(dh) {
                    let j = i + rng.index(dh - i);
                    idx.swap(i, j);
                    mask[idx[i]] = true;
                }
                mask
            })
            .collect();
        Self {
            dh,
            steps: step_masks,
        }
    }

    /// Samples a synthetic trace from a [`SparsityProfile`] at the given
    /// batch size.
    pub fn from_profile(
        dh: usize,
        steps: usize,
        batch: usize,
        profile: SparsityProfile,
        seed: u64,
    ) -> Self {
        let mut rng = SeedableStream::new(seed);
        let dead: Vec<bool> = (0..dh).map(|_| rng.coin(profile.dead)).collect();
        let step_masks = (0..steps)
            .map(|_| {
                (0..dh)
                    .map(|j| dead[j] || (0..batch).all(|_| rng.coin(profile.dynamic)))
                    .collect()
            })
            .collect();
        Self {
            dh,
            steps: step_masks,
        }
    }

    /// State width `dh`.
    pub fn dh(&self) -> usize {
        self.dh
    }

    /// Number of timesteps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The skip mask at step `t` (`true` = skippable column).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn mask(&self, t: usize) -> &[bool] {
        &self.steps[t]
    }

    /// Mean fraction of skippable columns over the whole trace.
    pub fn mean_skippable(&self) -> f64 {
        if self.steps.is_empty() || self.dh == 0 {
            return 0.0;
        }
        let total: usize = self
            .steps
            .iter()
            .map(|m| m.iter().filter(|b| **b).count())
            .sum();
        total as f64 / (self.steps.len() * self.dh) as f64
    }

    /// Number of *stored* columns per step under an offset encoder with
    /// `offset_bits`-wide run fields: non-skippable columns plus the
    /// anchor columns forced whenever a zero run saturates the field.
    pub fn stored_columns(&self, offset_bits: u8) -> Vec<usize> {
        let max_run = (1u32 << offset_bits) - 1;
        self.steps
            .iter()
            .map(|mask| {
                let mut stored = 0usize;
                let mut run = 0u32;
                for &skip in mask {
                    if skip && run < max_run {
                        run += 1;
                    } else {
                        stored += 1;
                        run = 0;
                    }
                }
                stored
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_trace_has_no_skips() {
        let t = SkipTrace::dense(16, 4);
        assert_eq!(t.mean_skippable(), 0.0);
        assert_eq!(t.stored_columns(8), vec![16; 4]);
    }

    #[test]
    fn from_state_trace_marks_all_lane_zeros() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]);
        let t = SkipTrace::from_state_trace(&[m]);
        assert_eq!(t.mask(0), &[true, false, true]);
        assert!((t.mean_skippable() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn profile_joint_sparsity_formula() {
        let p = SparsityProfile::new(0.5, 0.9);
        assert!((p.joint_sparsity(1) - 0.95).abs() < 1e-12);
        let expect8 = 0.5 + 0.5 * 0.9f64.powi(8);
        assert!((p.joint_sparsity(8) - expect8).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_paper_char_curve() {
        // Paper Fig. 7, PTB-char: 97% at B=1, 81% at B=8 → the fitted
        // profile must predict ≈66% at B=16 (the paper's third bar).
        let p = SparsityProfile::fit(0.97, 0.81, 8);
        let b16 = p.joint_sparsity(16);
        assert!(
            (b16 - 0.66).abs() < 0.06,
            "predicted B=16 sparsity {b16}, paper says 0.66"
        );
    }

    #[test]
    fn fit_reproduces_inputs() {
        let p = SparsityProfile::fit(0.93, 0.63, 8);
        assert!((p.joint_sparsity(1) - 0.93).abs() < 1e-6);
        assert!((p.joint_sparsity(8) - 0.63).abs() < 1e-6);
    }

    #[test]
    fn sampled_profile_matches_expectation() {
        let profile = SparsityProfile::new(0.4, 0.8);
        let t = SkipTrace::from_profile(512, 64, 4, profile, 7);
        let expect = profile.joint_sparsity(4);
        assert!(
            (t.mean_skippable() - expect).abs() < 0.05,
            "measured {} vs analytic {expect}",
            t.mean_skippable()
        );
    }

    #[test]
    fn stored_columns_include_offset_anchors() {
        // 10 all-skippable columns with a 2-bit offset (max run 3): runs
        // of 3 force an anchor, so ceil-ish anchors appear.
        let t = SkipTrace {
            dh: 10,
            steps: vec![vec![true; 10]],
        };
        // cols 0,1,2 skipped; col 3 anchor; 4,5,6 skipped; 7 anchor; 8,9 skipped.
        assert_eq!(t.stored_columns(2), vec![2]);
        // With 8-bit offsets nothing saturates.
        assert_eq!(t.stored_columns(8), vec![0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = SparsityProfile::new(0.3, 0.7);
        let a = SkipTrace::from_profile(64, 8, 2, p, 5);
        let b = SkipTrace::from_profile(64, 8, 2, p, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn with_fraction_is_exact() {
        let t = SkipTrace::with_fraction(200, 10, 0.815, 3);
        for step in 0..10 {
            let k = t.mask(step).iter().filter(|b| **b).count();
            assert_eq!(k, 163); // round(200 × 0.815)
        }
        assert!((t.mean_skippable() - 0.815).abs() < 0.003);
    }

    #[test]
    fn with_fraction_bounds() {
        assert_eq!(
            SkipTrace::with_fraction(50, 2, 0.0, 1).mean_skippable(),
            0.0
        );
        assert_eq!(
            SkipTrace::with_fraction(50, 2, 1.0, 1).mean_skippable(),
            1.0
        );
    }
}
