//! Property-based tests for the accelerator simulator.

use proptest::prelude::*;
use zskip_accel::cycle::GemvPipelineSim;
use zskip_accel::dataflow::DataflowModel;
use zskip_accel::{ArchConfig, InputKind, LstmWorkload, Simulator, SkipTrace, SparsityProfile};

fn workload_strategy() -> impl Strategy<Value = LstmWorkload> {
    (
        8usize..256, // dh
        prop_oneof![
            Just(InputKind::OneHot),
            Just(InputKind::Dense),
            Just(InputKind::Scalar)
        ],
        1usize..16, // seq_len
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
    )
        .prop_map(|(dh, input, seq_len, batch)| {
            let dx = match input {
                InputKind::Scalar => 1,
                _ => 1 + dh / 3,
            };
            LstmWorkload {
                dh,
                dx,
                input,
                seq_len,
                batch,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_never_exceeds_peak(w in workload_strategy()) {
        let sim = Simulator::paper();
        let r = sim.run_dense(&w);
        prop_assert!(r.effective_gops <= sim.peak_gops() * 1.001,
            "{} > peak", r.effective_gops);
        prop_assert!(r.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn any_sparse_trace_is_at_least_as_fast_as_dense(
        w in workload_strategy(),
        sparsity in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let sim = Simulator::paper();
        let dense = sim.run_dense(&w);
        let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity, seed);
        let sparse = sim.run(&w, &trace);
        prop_assert!(sparse.cycles <= dense.cycles);
        prop_assert!(sparse.energy_joules <= dense.energy_joules * 1.001);
    }

    #[test]
    fn speedup_respects_amdahl_ceiling(
        w in workload_strategy(),
        sparsity in 0.1f64..0.99,
        seed in 0u64..100,
    ) {
        // Even a perfect skip of `s` of the Wh columns cannot beat
        // 1 / (1 - s · skippable_fraction) by more than modeling slack.
        let sim = Simulator::paper();
        let dense = sim.run_dense(&w);
        let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity, seed);
        let sparse = sim.run(&w, &trace);
        let speedup = sparse.speedup_over(&dense);
        let ceiling = 1.0 / (1.0 - sparsity * w.skippable_fraction());
        prop_assert!(speedup <= ceiling * 1.10 + 0.05,
            "speedup {speedup} vs ceiling {ceiling}");
    }

    #[test]
    fn traffic_is_monotone_in_sparsity(
        w in workload_strategy(),
        s1 in 0.0f64..0.5,
        ds in 0.0f64..0.5,
    ) {
        let model = DataflowModel::new(ArchConfig::paper());
        let t_low = SkipTrace::with_fraction(w.dh, w.seq_len, s1, 3);
        let t_high = SkipTrace::with_fraction(w.dh, w.seq_len, s1 + ds, 3);
        let (_, tr_low, _) = model.run(&w, &t_low);
        let (_, tr_high, _) = model.run(&w, &t_high);
        prop_assert!(tr_high.weight_bytes <= tr_low.weight_bytes);
        prop_assert!(tr_high.total() <= tr_low.total());
    }

    #[test]
    fn cycle_sim_matches_analytic_everywhere(
        dh in 8usize..160,
        batch in 1usize..=16,
        cols in 1usize..40,
    ) {
        let sim = GemvPipelineSim::new(ArchConfig::paper());
        let detailed = sim.simulate(dh, batch, cols);
        let analytic = sim.analytic(dh, batch, cols);
        // The analytic model rounds each column's cost up to a whole
        // cycle while the pipeline amortizes the remainder across
        // columns, so the bound is pipeline fill plus one cycle per
        // column.
        let slack = (ArchConfig::paper().pipeline_depth() + batch + cols + 4) as u64;
        prop_assert!(
            detailed <= analytic + slack && detailed + slack >= analytic,
            "dh={dh} B={batch} cols={cols}: {detailed} vs {analytic}"
        );
    }

    #[test]
    fn stored_columns_bounded_by_mask(
        dh in 4usize..256,
        steps in 1usize..8,
        sparsity in 0.0f64..1.0,
        bits in 2u8..=10,
    ) {
        let trace = SkipTrace::with_fraction(dh, steps, sparsity, 17);
        let stored = trace.stored_columns(bits);
        for (t, &s) in stored.iter().enumerate() {
            let skippable = trace.mask(t).iter().filter(|b| **b).count();
            // At least the non-skippable columns; at most all of them.
            prop_assert!(s >= dh - skippable);
            prop_assert!(s <= dh);
        }
    }

    #[test]
    fn profile_fit_round_trips(
        p1 in 0.2f64..0.98,
        frac in 0.05f64..0.95,
        b in 2usize..=16,
    ) {
        // The two-component model can only represent joint sparsities in
        // [p1^b, p1]; sample inside the feasible range.
        let lo = p1.powi(b as i32);
        let p_b = lo + frac * (p1 - lo);
        let profile = SparsityProfile::fit(p1, p_b, b);
        prop_assert!((profile.joint_sparsity(1) - p1).abs() < 1e-4);
        prop_assert!((profile.joint_sparsity(b) - p_b).abs() < 1e-4);
        // Joint sparsity is non-increasing in batch size.
        let mut prev = profile.joint_sparsity(1);
        for bb in 2..=16 {
            let cur = profile.joint_sparsity(bb);
            prop_assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn report_identities_hold(
        w in workload_strategy(),
        sparsity in 0.0f64..1.0,
    ) {
        let sim = Simulator::paper();
        let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity, 23);
        let r = sim.run(&w, &trace);
        prop_assert!((r.seconds - r.cycles as f64 / sim.arch().clock_hz).abs() < 1e-12);
        prop_assert!((r.gops_per_watt - r.effective_gops / r.avg_power_watts).abs() < 1e-6);
        prop_assert!(r.energy_joules > 0.0);
    }
}
