//! The process boundary under load: a [`TcpServer`] on loopback serving
//! 64 concurrent connections, each a real socket with its own
//! [`RemoteClient`], under connection churn — a third of the clients
//! hang up and reconnect between rounds. Client-observed token latency
//! percentiles print at the end, next to the server's own wire-lane
//! view of the same traffic, and drop into a `BENCH_serve_tcp.json`
//! evidence file (same schema as every other lane; diff runs with
//! `bench_compare`).
//!
//! ```sh
//! cargo run --release --example serve_tcp
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;
use zskip::runtime::FrozenCharLm;
use zskip::serve::{ServeConfig, Server};
use zskip::telemetry::LatencyHistogram;
use zskip::wire::{RemoteClient, TcpServer};

const VOCAB: usize = 64;
const CONNECTIONS: usize = 64;
const ROUNDS: usize = 4;
const TOKENS_PER_ROUND: usize = 32;

/// One connection's life: open a stream, pump tokens round by round,
/// and (for every third worker) hang up and reconnect between rounds
/// so the run exercises session teardown and fresh handshakes, not
/// just steady state.
fn drive_connection(addr: SocketAddr, worker: usize, latency: &LatencyHistogram) -> u64 {
    let mut client =
        RemoteClient::<FrozenCharLm>::connect(addr).expect("connect to local TcpServer");
    let mut stream = client.open().expect("open stream");
    let mut tokens = 0u64;
    for round in 0..ROUNDS {
        if round > 0 && worker.is_multiple_of(3) {
            // Churny client: a fresh TCP connection and a fresh session.
            drop(client);
            client = RemoteClient::connect(addr).expect("reconnect");
            stream = client.open().expect("reopen stream");
        }
        for step in 0..TOKENS_PER_ROUND {
            let token = (worker * 31 + round * 7 + step) % VOCAB;
            let started = Instant::now();
            client.send(stream, token).expect("send token");
            let result = client.recv(stream).expect("recv result");
            latency.record_duration(started.elapsed());
            assert!(result.argmax < VOCAB, "argmax out of range");
            tokens += 1;
        }
    }
    client.close(stream).expect("close stream");
    tokens
}

fn main() {
    let model = FrozenCharLm::random(VOCAB, 128, 42);
    let server = Server::start(
        model,
        ServeConfig::for_threshold(0.3)
            .with_shards(4)
            .with_queue_capacity(2048),
    );
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let addr = tcp.local_addr();
    println!(
        "== {CONNECTIONS} concurrent TCP connections x {ROUNDS} rounds x \
         {TOKENS_PER_ROUND} tokens against {addr} (4 shards) ==\n"
    );

    let latency = Arc::new(LatencyHistogram::new());
    let started = Instant::now();
    let workers: Vec<_> = (0..CONNECTIONS)
        .map(|worker| {
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || drive_connection(addr, worker, &latency))
        })
        .collect();
    let tokens: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("worker panicked"))
        .sum();
    let elapsed = started.elapsed();

    let client_view = latency.snapshot();
    println!(
        "client-observed round-trip latency over {} tokens in {:.2?}:\n  \
         p50≤{} p90≤{} p99≤{} p999≤{} (ns, bucket upper bounds)\n",
        tokens,
        elapsed,
        client_view.p50(),
        client_view.p90(),
        client_view.p99(),
        client_view.p999(),
    );

    let server_view = tcp.wire_latency();
    let wire = tcp.wire_stats();
    println!(
        "server wire lane (request-received → result-written, {} samples):\n  \
         p50≤{} p90≤{} p99≤{}\n",
        server_view.count(),
        server_view.p50(),
        server_view.p90(),
        server_view.p99(),
    );
    println!(
        "wire stats: {} connections opened, {} closed clean, {} poisoned, \
         {} sessions torn down, {} frames in / {} frames out",
        wire.connections_opened,
        wire.connections_closed,
        wire.connections_poisoned,
        wire.sessions_torn_down,
        wire.frames_received,
        wire.frames_sent,
    );
    let events = tcp.drain_wire_events();
    println!(
        "last {} wire events (of {} drained):",
        events.len().min(6),
        events.len()
    );
    for event in events.iter().rev().take(6).rev() {
        println!("  {event}");
    }

    // Machine-readable evidence through the shared bench pipeline.
    let secs = elapsed.as_secs_f64().max(1e-9);
    let evidence = zskip_bench::Evidence::new("serve_tcp")
        .metric("serve_tcp/client_latency_p50", client_view.p50() as f64)
        .metric("serve_tcp/client_latency_p90", client_view.p90() as f64)
        .metric("serve_tcp/client_latency_p99", client_view.p99() as f64)
        .metric("serve_tcp/client_latency_p999", client_view.p999() as f64)
        .metric("serve_tcp/server_lane_p99", server_view.p99() as f64)
        .metric(
            "serve_tcp/mean_token_ns",
            secs * 1e9 / (tokens.max(1) as f64),
        );
    let path = evidence.write().expect("write bench evidence");
    println!("\nbench evidence: {}", path.display());
    tcp.shutdown();
}
