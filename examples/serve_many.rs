//! Serving at scale: sustained mixed open/submit/close traffic from more
//! than a thousand concurrent streams through the sharded `zskip::serve`
//! layer, at several shard counts.
//!
//! ```sh
//! cargo run --release --example serve_many
//! ```

use std::time::Duration;
use zskip::runtime::FrozenCharLm;
use zskip::serve::{LoadConfig, LoadGenerator, ServeConfig, Server};

const STREAMS: usize = 1200;
const ROUNDS: usize = 3;
const TOKENS_PER_ROUND: usize = 4;

fn main() {
    // Random weights at serving shape: this demo measures the serving
    // layer, not model quality (see `serve_char_lm` for a trained model).
    let model = FrozenCharLm::random(64, 256, 42);
    println!(
        "driving {STREAMS} concurrent streams x {ROUNDS} rounds x \
         {TOKENS_PER_ROUND} tokens, 15% churn per round\n"
    );
    println!("shards |   tok/s | stream-rounds/s | skip%  | opens | evictions | deadline misses");
    println!("-------|---------|-----------------|--------|-------|-----------|----------------");
    for shards in [1usize, 2, 4] {
        let server = Server::start(
            model.clone(),
            ServeConfig::for_threshold(0.3)
                .with_shards(shards)
                .with_queue_capacity(4096)
                .with_session_ttl(Duration::from_secs(10))
                .with_token_deadline(Duration::from_millis(50)),
        );
        let report = LoadGenerator::new(LoadConfig {
            streams: STREAMS,
            tokens_per_round: TOKENS_PER_ROUND,
            rounds: ROUNDS,
            churn: 0.15,
            seed: 3,
            deadline: Some(Duration::from_millis(50)),
            ..LoadConfig::default()
        })
        .run(&server)
        .expect("load run");
        let stats = server.stats();
        println!(
            "{shards:>6} | {:>7.0} | {:>15.0} | {:>5.1}% | {:>5} | {:>9} | {:>15}",
            report.tokens_per_sec,
            report.stream_rounds_per_sec,
            stats.skip_fraction() * 100.0,
            report.opened,
            stats.evicted_sessions(),
            stats.deadline_misses(),
        );
        println!(
            "       | client-observed token latency: {}",
            report.token_latency
        );
        server.shutdown();
    }
    println!(
        "\n(each shard is an independent engine; outputs are bit-identical \
         to a single engine at any shard count)"
    );
}
