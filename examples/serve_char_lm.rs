//! Serving demo: train a pruned char-LM, freeze it, and serve N
//! concurrent token streams through the `zskip::runtime` engine, with a
//! dense-engine comparison at the end.
//!
//! ```sh
//! cargo run --release --example serve_char_lm
//! ```

use std::time::Instant;
use zskip::core::train::{train_char, CharTaskConfig};
use zskip::runtime::{Engine, EngineConfig, FrozenCharLm, SessionId};

const STREAMS: usize = 4;
const TOKENS_PER_STREAM: usize = 300;

fn drive(engine: &mut Engine, prompts: &[(SessionId, usize)]) -> f64 {
    // Greedy decoding: each stream feeds the engine's own prediction back
    // as its next input, one token per batched step.
    let mut next: Vec<(SessionId, usize)> = prompts.to_vec();
    let start = Instant::now();
    for _ in 0..TOKENS_PER_STREAM {
        for &(id, tok) in &next {
            engine.submit(id, tok).expect("submit");
        }
        engine.step();
        for slot in next.iter_mut() {
            let result = engine
                .poll(slot.0)
                .expect("session")
                .expect("one result per step");
            slot.1 = result.argmax;
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    // 1. Train a pruned char-LM (quick scale).
    let config = CharTaskConfig {
        hidden: 192,
        corpus_chars: 24_000,
        batch: 8,
        bptt: 32,
        epochs: 3,
        lr: 3e-3,
        seed: 7,
    };
    let threshold = 0.5;
    println!(
        "training a {}-unit LSTM at threshold {threshold} ...",
        config.hidden
    );
    let mut outcome = train_char(&config, threshold);
    println!(
        "trained: BPC {:.3}, state sparsity {:.1}%",
        outcome.result.metric,
        outcome.result.sparsity * 100.0
    );

    // 2. Freeze the weights for serving.
    let frozen = FrozenCharLm::freeze(&mut outcome.model);
    let vocab = frozen.vocab_size();

    // 3. Serve N concurrent streams with the skipping engine.
    let mut engine = Engine::new(frozen.clone(), EngineConfig::for_threshold(threshold));
    let prompts: Vec<(SessionId, usize)> = (0..STREAMS)
        .map(|i| (engine.open_session(), (i * 7 + 1) % vocab))
        .collect();
    let sparse_secs = drive(&mut engine, &prompts);
    let stats = *engine.stats();

    // 4. Same weights served *without* pruning (threshold 0 ⇒ the hidden
    //    state stays dense — what serving the unpruned model costs). The
    //    generated text differs; the comparison is per-token cost.
    let mut dense_engine = Engine::new(frozen, EngineConfig::for_threshold(0.0));
    let dense_prompts: Vec<(SessionId, usize)> = (0..STREAMS)
        .map(|i| (dense_engine.open_session(), (i * 7 + 1) % vocab))
        .collect();
    let dense_secs = drive(&mut dense_engine, &dense_prompts);

    let tokens = (STREAMS * TOKENS_PER_STREAM) as f64;
    println!("\nserved {STREAMS} concurrent streams x {TOKENS_PER_STREAM} tokens:");
    println!(
        "pruned model  : {:>8.1} tok/s   ({:.1}% of Wh fetches skipped, {} anchor cols)",
        tokens / sparse_secs,
        stats.skip_fraction() * 100.0,
        stats.anchor_columns
    );
    println!("dense model   : {:>8.1} tok/s", tokens / dense_secs);
    println!(
        "wall-clock speedup from skip-sparsity: {:.2}x",
        dense_secs / sparse_secs
    );
}
