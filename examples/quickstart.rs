//! Quickstart: train a small pruned LSTM, measure its sparsity, and run
//! it through the accelerator simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zskip::accel::{InputKind, LstmWorkload, Simulator, SkipTrace};
use zskip::core::train::{train_char, CharTaskConfig};
use zskip::core::StatePruner;

fn main() {
    // 1. Train a char-level LSTM with the paper's pruning method: the
    //    hidden state is thresholded in the forward pass (Eq. 5), and
    //    gradients flow straight through to the dense state (Eq. 6).
    let config = CharTaskConfig {
        hidden: 64,
        corpus_chars: 20_000,
        batch: 8,
        bptt: 32,
        epochs: 3,
        lr: 3e-3,
        seed: 7,
    };
    let threshold = 0.2;
    println!(
        "training a {}-unit LSTM with pruning threshold {threshold} ...",
        config.hidden
    );
    let dense = train_char(&config, 0.0);
    let pruned = train_char(&config, threshold);
    println!(
        "dense  : BPC {:.3}  state sparsity {:>5.1}%",
        dense.result.metric,
        dense.result.sparsity * 100.0
    );
    println!(
        "pruned : BPC {:.3}  state sparsity {:>5.1}%",
        pruned.result.metric,
        pruned.result.sparsity * 100.0
    );

    // 2. Collect a state trace from the pruned model and hand it to the
    //    accelerator simulator as its skip schedule.
    let lanes = 8;
    let trace_states = zskip::core::train::char_state_trace(
        &pruned.model,
        &pruned.corpus,
        lanes,
        config.bptt,
        &StatePruner::new(threshold),
    );
    let trace = SkipTrace::from_state_trace(&trace_states);

    let workload = LstmWorkload {
        dh: config.hidden,
        dx: 50,
        input: InputKind::OneHot,
        seq_len: trace.len(),
        batch: lanes,
    };

    // 3. Compare dense vs sparse execution on the simulated hardware.
    let sim = Simulator::paper();
    let dense_run = sim.run_dense(&workload);
    let sparse_run = sim.run(&workload, &trace);
    println!(
        "\naccelerator ({} PEs @ {} MHz, LPDDR4):",
        sim.arch().total_pes(),
        sim.arch().clock_hz / 1e6
    );
    println!(
        "dense  : {:>8.1} GOPS   {:>8.1} GOPS/W",
        dense_run.effective_gops, dense_run.gops_per_watt
    );
    println!(
        "sparse : {:>8.1} GOPS   {:>8.1} GOPS/W   ({:.2}x speedup, {:.2}x energy)",
        sparse_run.effective_gops,
        sparse_run.gops_per_watt,
        sparse_run.speedup_over(&dense_run),
        sparse_run.energy_improvement_over(&dense_run)
    );
}
