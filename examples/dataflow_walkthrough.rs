//! Walkthrough of the Fig. 5 dataflow: why batching recovers utilization
//! under a bandwidth-limited memory, and why skipping then requires all
//! batch lanes to be zero.
//!
//! ```sh
//! cargo run --release --example dataflow_walkthrough
//! ```

use zskip::accel::cycle::GemvPipelineSim;
use zskip::accel::{ArchConfig, SkipTrace, SparsityProfile};
use zskip::core::OffsetEncoder;

fn main() {
    let arch = ArchConfig::paper();
    let sim = GemvPipelineSim::new(arch);
    let dh = 96;
    let cols = dh;

    println!(
        "Fig. 5 on the paper's architecture ({} PEs, {} weights/cycle):\n",
        arch.total_pes(),
        arch.weights_per_cycle
    );
    println!("dense GEMV over {dh} state columns, cycle-stepped pipeline:");
    println!("batch  cycles  MACs/cycle  utilization");
    for batch in [1usize, 2, 4, 8, 16] {
        let cycles = sim.simulate(dh, batch, cols);
        let macs = (4 * dh * cols * batch) as f64;
        let per_cycle = macs / cycles as f64;
        println!(
            "{batch:>5}  {cycles:>6}  {per_cycle:>10.1}  {:>10.1}%",
            100.0 * per_cycle / arch.total_pes() as f64
        );
    }
    println!(
        "\n→ batch 8 fills the {}-deep weight-reuse pipeline (Fig. 5c);",
        arch.pipeline_depth()
    );
    println!("  batch 1 leaves the PEs {:.0}% idle (Fig. 5b).\n", 87.5);

    // The skip-legality rule of Fig. 5d: a column is skippable only when
    // every lane is zero at that position.
    println!("Fig. 5d: per-lane sparsity 90%, what survives batching?");
    let profile = SparsityProfile::new(0.0, 0.90);
    for batch in [1usize, 2, 4, 8, 16] {
        let trace = SkipTrace::from_profile(2048, 16, batch, profile, 5);
        println!(
            "batch {batch:>2}: skippable columns {:>5.1}%  (independent lanes → 0.9^B = {:>5.1}%)",
            trace.mean_skippable() * 100.0,
            0.9f64.powi(batch as i32) * 100.0
        );
    }

    // The offset encoder of Section III-B.
    println!("\noffset encoding of a sparse state (8-bit offsets):");
    let mut lane = vec![0i8; 32];
    lane[3] = 42;
    lane[17] = -7;
    lane[18] = 5;
    let enc = OffsetEncoder::hardware_default();
    let state = enc.encode(&[lane]);
    for col in state.columns() {
        println!(
            "  offset {:>3} → column {:>2}, value {:>4}",
            col.offset, col.index, col.values[0]
        );
    }
    println!(
        "  stored {} of 32 columns; encoded size {} bits vs {} dense",
        state.stored_columns(),
        state.size_bits(),
        state.dense_size_bits()
    );
    println!("  (the offsets directly address the weight columns to fetch — no decoder)");
}
