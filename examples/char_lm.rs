//! Character-level language modeling with state pruning: a miniature
//! Fig. 2 — sweep pruning thresholds and print the BPC/sparsity
//! trade-off curve with its sweet spot.
//!
//! ```sh
//! cargo run --release --example char_lm
//! ```

use zskip::core::sweep::{format_curve, sweet_spot, SparsityPoint};
use zskip::core::train::{train_char, CharTaskConfig};

fn main() {
    let config = CharTaskConfig {
        hidden: 64,
        corpus_chars: 24_000,
        batch: 8,
        bptt: 32,
        epochs: 3,
        lr: 3e-3,
        seed: 11,
    };
    let thresholds = [0.0f32, 0.05, 0.1, 0.2, 0.35, 0.5];

    let mut points = Vec::new();
    for &t in &thresholds {
        let out = train_char(&config, t);
        println!(
            "threshold {t:<5}: sparsity {:>5.1}%   BPC {:.4}",
            out.result.sparsity * 100.0,
            out.result.metric
        );
        points.push(SparsityPoint {
            threshold: t,
            sparsity: out.result.sparsity,
            metric: out.result.metric,
        });
    }

    println!("\n{}", format_curve(&points, "BPC"));
    let baseline = points[0].metric;
    match sweet_spot(&points, baseline, 0.02) {
        Some(s) => println!(
            "sweet spot: {:.1}% of the state pruned with BPC {:.4} (dense: {:.4})",
            s.sparsity * 100.0,
            s.metric,
            baseline
        ),
        None => println!("no sweet spot found — try more epochs or smaller thresholds"),
    }
}
