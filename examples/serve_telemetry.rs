//! Observability tour of the serving stack: latency histograms, the
//! per-stage step breakdown, the shard event ring and sampled per-token
//! span tracing, live under churny multi-shard load — then the same
//! snapshot exported as JSON, the trace exported as Chrome trace-event
//! JSON (open it in Perfetto), and the run's latency percentiles dropped
//! as a `BENCH_serve_telemetry.json` evidence file.
//!
//! ```sh
//! cargo run --release --example serve_telemetry
//! ```
//!
//! The percentile tables print *while the run is in flight*
//! (`LoadConfig::progress_every`): snapshots and event drains never stop
//! the workers. Set `ZSKIP_STAGE_TIMING=0` to veto the stage clock and
//! watch the breakdown section disappear; set `ZSKIP_TRACE=0` to veto
//! tracing the same way (the trace file comes out empty but valid).

use std::time::Duration;
use zskip::runtime::FrozenCharLm;
use zskip::serve::{validate_chrome_json, LoadConfig, LoadGenerator, ServeConfig, Server};

fn main() {
    let model = FrozenCharLm::random(64, 256, 42);
    let server = Server::start(
        model,
        ServeConfig::for_threshold(0.3)
            .with_shards(2)
            .with_queue_capacity(2048)
            .with_session_ttl(Duration::from_secs(10))
            .with_token_deadline(Duration::from_millis(20))
            .with_event_capacity(512)
            // Trace every stream (1-in-1) for the tour; production would
            // sample 1-in-64 or sparser.
            .with_trace_sampling(1)
            .with_trace_span_capacity(1 << 15),
    );

    println!("== live percentile tables under churn (2 shards, 512 streams) ==\n");
    let report = LoadGenerator::new(LoadConfig {
        streams: 512,
        tokens_per_round: 4,
        rounds: 6,
        churn: 0.2,
        seed: 3,
        deadline: Some(Duration::from_millis(20)),
        progress_every: 2, // a table every 2 rounds, mid-flight
    })
    .run(&server)
    .expect("load run");

    println!("\n== load generator's client-side report ==\n{report}\n");

    let stats = server.stats();
    println!("== final server snapshot ==\n{stats}\n");
    println!(
        "token latency percentiles: p50≤{} p90≤{} p99≤{} p999≤{} (ns, bucket upper bounds)\n",
        stats.token_latency().p50(),
        stats.token_latency().p90(),
        stats.token_latency().p99(),
        stats.token_latency().p999(),
    );

    let events = server.drain_events();
    println!(
        "== last {} shard events (ring drained live) ==",
        events.len().min(10)
    );
    for event in events.iter().rev().take(10).rev() {
        println!("  {event}");
    }

    println!(
        "\n== the same snapshot as JSON (vendored serde) ==\n{}",
        stats.to_json()
    );
    println!(
        "\nload report as JSON:\n{}",
        zskip::serde_json::to_string_pretty(&report).expect("infallible")
    );

    // Drain the trace and export it as Chrome trace-event JSON. The
    // export is strict-validated before it is written: a file this
    // example produces always loads in Perfetto.
    let trace = server.drain_trace();
    let json = trace.to_chrome_json();
    let validation = validate_chrome_json(&json).expect("trace export validates");
    let out = std::env::var("ZSKIP_TRACE_OUT")
        .unwrap_or_else(|_| "target/traces/serve_telemetry.json".to_string());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }
    std::fs::write(&path, &json).expect("write trace file");
    println!(
        "\n== per-token trace ==\n{} spans from {} shard(s) ({} dropped), \
         {} trace events ({} complete, {} async token pairs)\nwrote {}\n\
         open it at https://ui.perfetto.dev (or chrome://tracing): \
         each shard is a process, each sampled stream a thread group",
        trace.len(),
        trace
            .spans()
            .iter()
            .map(|s| s.shard)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        trace.dropped(),
        validation.events,
        validation.complete,
        validation.async_begins,
        path.display(),
    );

    // The run's client-observed percentiles, as machine-readable bench
    // evidence — the same `BENCH_<lane>.json` pipeline the criterion
    // harnesses use, diffable with `bench_compare`.
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    let evidence = zskip_bench::Evidence::new("serve_telemetry")
        .metric(
            "serve_telemetry/client_latency_p50",
            report.token_latency.p50() as f64,
        )
        .metric(
            "serve_telemetry/client_latency_p90",
            report.token_latency.p90() as f64,
        )
        .metric(
            "serve_telemetry/client_latency_p99",
            report.token_latency.p99() as f64,
        )
        .metric(
            "serve_telemetry/client_latency_p999",
            report.token_latency.p999() as f64,
        )
        .metric(
            "serve_telemetry/mean_token_ns",
            secs * 1e9 / (report.tokens.max(1) as f64),
        );
    let evidence_path = evidence.write().expect("write bench evidence");
    println!("bench evidence: {}", evidence_path.display());
    server.shutdown();
}
