//! Observability tour of the serving stack: latency histograms, the
//! per-stage step breakdown and the shard event ring, live under churny
//! multi-shard load — then the same snapshot exported as JSON.
//!
//! ```sh
//! cargo run --release --example serve_telemetry
//! ```
//!
//! The percentile tables print *while the run is in flight*
//! (`LoadConfig::progress_every`): snapshots and event drains never stop
//! the workers. Set `ZSKIP_STAGE_TIMING=0` to veto the stage clock and
//! watch the breakdown section disappear.

use std::time::Duration;
use zskip::runtime::FrozenCharLm;
use zskip::serve::{LoadConfig, LoadGenerator, ServeConfig, Server};

fn main() {
    let model = FrozenCharLm::random(64, 256, 42);
    let server = Server::start(
        model,
        ServeConfig::for_threshold(0.3)
            .with_shards(2)
            .with_queue_capacity(2048)
            .with_session_ttl(Duration::from_secs(10))
            .with_token_deadline(Duration::from_millis(20))
            .with_event_capacity(512),
    );

    println!("== live percentile tables under churn (2 shards, 512 streams) ==\n");
    let report = LoadGenerator::new(LoadConfig {
        streams: 512,
        tokens_per_round: 4,
        rounds: 6,
        churn: 0.2,
        seed: 3,
        deadline: Some(Duration::from_millis(20)),
        progress_every: 2, // a table every 2 rounds, mid-flight
    })
    .run(&server)
    .expect("load run");

    println!("\n== load generator's client-side report ==\n{report}\n");

    let stats = server.stats();
    println!("== final server snapshot ==\n{stats}\n");
    println!(
        "token latency percentiles: p50≤{} p90≤{} p99≤{} p999≤{} (ns, bucket upper bounds)\n",
        stats.token_latency().p50(),
        stats.token_latency().p90(),
        stats.token_latency().p99(),
        stats.token_latency().p999(),
    );

    let events = server.drain_events();
    println!(
        "== last {} shard events (ring drained live) ==",
        events.len().min(10)
    );
    for event in events.iter().rev().take(10).rev() {
        println!("  {event}");
    }

    println!(
        "\n== the same snapshot as JSON (vendored serde) ==\n{}",
        stats.to_json()
    );
    println!(
        "\nload report as JSON:\n{}",
        zskip::serde_json::to_string_pretty(&report).expect("infallible")
    );
    server.shutdown();
}
