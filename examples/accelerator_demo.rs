//! Accelerator tour: the paper-scale workloads on the simulated
//! zero-state-skipping accelerator — dense vs sparse, all batch sizes —
//! plus the functional datapath proving that skipping never changes a
//! single output bit.
//!
//! ```sh
//! cargo run --release --example accelerator_demo
//! ```

use zskip::accel::{FunctionalAccelerator, LstmWorkload, Simulator, SkipTrace, SparsityProfile};
use zskip::core::QuantizedLstm;
use zskip::nn::LstmCell;
use zskip::tensor::SeedableStream;

/// One benchmark task: label, workload constructor, Fig. 7 sparsities.
type TaskRow = (&'static str, fn(usize) -> LstmWorkload, [f64; 3]);

fn main() {
    let sim = Simulator::paper();
    println!(
        "accelerator: {} tiles x {} PEs, {} MHz, {:.1} mm^2, peak {:.1} GOPS\n",
        sim.arch().tiles,
        sim.arch().pes_per_tile,
        sim.arch().clock_hz / 1e6,
        sim.area_mm2(),
        sim.peak_gops()
    );

    // Timing/energy across the paper's three tasks.
    let tasks: [TaskRow; 3] = [
        ("PTB-char ", LstmWorkload::ptb_char, [0.97, 0.81, 0.66]),
        ("PTB-word ", LstmWorkload::ptb_word, [0.93, 0.63, 0.41]),
        ("seq-MNIST", LstmWorkload::mnist, [0.83, 0.55, 0.43]),
    ];
    println!("task       batch  dense GOPS  sparse GOPS  speedup  sparse GOPS/W");
    for (name, mk, sparsity) in tasks {
        for (i, batch) in [1usize, 8, 16].into_iter().enumerate() {
            let w = mk(batch);
            let dense = sim.run_dense(&w);
            let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity[i], 9 + i as u64);
            let sparse = sim.run(&w, &trace);
            println!(
                "{name}  {batch:>5}  {:>10.1}  {:>11.1}  {:>6.2}x  {:>13.1}",
                dense.effective_gops,
                sparse.effective_gops,
                sparse.speedup_over(&dense),
                sparse.gops_per_watt
            );
        }
    }

    // Functional proof: sparse (offset-addressed) execution is
    // bit-identical to dense evaluation of the same quantized model.
    let mut rng = SeedableStream::new(1);
    let cell = LstmCell::new(8, 64, &mut rng);
    let q = QuantizedLstm::from_cell(&cell, 0.12);
    let accel = FunctionalAccelerator::new(q.clone());
    let inputs: Vec<Vec<Vec<i8>>> = (0..20)
        .map(|t| {
            (0..4)
                .map(|lane| {
                    let x: Vec<f32> = (0..8)
                        .map(|i| ((t * 8 + i + lane) as f32 * 0.17).sin())
                        .collect();
                    q.quantize_input(&x)
                })
                .collect()
        })
        .collect();
    let hw = accel.run_sequence(&inputs);
    let mut all_match = true;
    for lane in 0..4 {
        let lane_inputs: Vec<Vec<i8>> = inputs.iter().map(|s| s[lane].clone()).collect();
        let reference = q.run_sequence(&lane_inputs);
        all_match &= reference.last().expect("steps").h == hw[lane].h;
    }
    let zeros: usize = hw
        .iter()
        .map(|s| s.h.iter().filter(|v| **v == 0).count())
        .sum();
    println!(
        "\nfunctional check: hardware output {} the quantized reference \
         (final state sparsity {:.0}%)",
        if all_match {
            "bit-matches"
        } else {
            "DIVERGES from"
        },
        100.0 * zeros as f64 / (4.0 * 64.0)
    );
    let profile = SparsityProfile::fit(0.97, 0.81, 8);
    println!(
        "Fig. 7 profile fit: dead units {:.1}%, dynamic zeros {:.1}% → predicts {:.1}% at B=16 (paper: 66%)",
        profile.dead * 100.0,
        profile.dynamic * 100.0,
        profile.joint_sparsity(16) * 100.0
    );
}
