//! Sequential image classification with a pruned-state LSTM: scan
//! stroke-rendered digits pixel by pixel (the paper's Section II-B3
//! task) and classify from the final hidden state.
//!
//! ```sh
//! cargo run --release --example seq_mnist
//! ```

use zskip::core::sparsity;
use zskip::core::train::{digits_state_trace, train_digits, DigitsTaskConfig, ScanOrder};
use zskip::core::StatePruner;

fn main() {
    let config = DigitsTaskConfig {
        hidden: 48,
        train_images: 800,
        test_images: 200,
        batch: 20,
        downsample: 2, // 14×14 images
        epochs: 5,
        lr: 1e-3,
        scan: ScanOrder::Row, // ScanOrder::Pixel for the paper's 784-step protocol
        seed: 3,
    };

    let steps = match config.scan {
        ScanOrder::Pixel => (28 / config.downsample) * (28 / config.downsample),
        ScanOrder::Row => 28 / config.downsample,
    };
    println!(
        "sequence length: {steps} steps per image ({:?} scan)",
        config.scan
    );
    for threshold in [0.0f32, 0.1, 0.2] {
        let out = train_digits(&config, threshold);
        println!(
            "threshold {threshold:<4}: MER {:>5.2}%   state sparsity {:>5.1}%",
            out.result.metric,
            out.result.sparsity * 100.0
        );
        if threshold > 0.0 {
            // How much of that sparsity survives batching (Fig. 5d's
            // all-lanes-zero rule)?
            let trace = digits_state_trace(
                &out.model,
                &out.test_set,
                16,
                &config,
                &StatePruner::new(threshold),
            );
            println!(
                "              joint sparsity: B=1 {:>5.1}%  B=8 {:>5.1}%  B=16 {:>5.1}%",
                sparsity::grouped_joint_sparsity(&trace, 1) * 100.0,
                sparsity::grouped_joint_sparsity(&trace, 8) * 100.0,
                sparsity::grouped_joint_sparsity(&trace, 16) * 100.0,
            );
        }
    }
}
