//! Serving demo for the 8-bit quantized family: train a pruned char-LM,
//! freeze it into the **integer** serving path (`i8×i8→i32` gate
//! accumulators, LUT activations, `i8` session state — the accelerator's
//! arithmetic), prove a served stream bit-matches the golden
//! `zskip_core::QuantizedLstm` reference, then serve concurrent streams
//! through the sharded `zskip::serve` front-end next to the f32 engine.
//!
//! ```sh
//! cargo run --release --example serve_quantized
//! ```

use std::time::Instant;
use zskip::core::train::{train_char, CharTaskConfig};
use zskip::core::QuantizedLstm;
use zskip::runtime::{
    Engine, EngineConfig, FrozenCharLm, FrozenModel, FrozenQuantizedCharLm, HeadScratch, StateLanes,
};
use zskip::serve::{ServeConfig, Server, StreamId};

const STREAMS: usize = 8;
const TOKENS_PER_STREAM: usize = 200;

/// Serves greedy-decoding streams through a sharded server; returns
/// tokens/sec and the cross-shard skip fraction.
fn serve<M: FrozenModel<Input = usize>>(model: M, threshold: f32, vocab: usize) -> (f64, f64) {
    let server = Server::start(model, ServeConfig::for_threshold(threshold).with_shards(2));
    let mut client = server.client();
    let mut streams: Vec<(StreamId, usize)> = (0..STREAMS)
        .map(|i| (client.open().expect("open"), (i * 7 + 1) % vocab))
        .collect();
    let start = Instant::now();
    for _ in 0..TOKENS_PER_STREAM {
        for &(id, tok) in &streams {
            client.send(id, tok).expect("send");
        }
        for slot in streams.iter_mut() {
            slot.1 = client.recv(slot.0).expect("recv").argmax;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let skip = server.stats().skip_fraction();
    for (id, _) in streams {
        let _ = client.close(id);
    }
    drop(client);
    server.shutdown();
    ((STREAMS * TOKENS_PER_STREAM) as f64 / secs, skip)
}

fn main() {
    // 1. Train a pruned char-LM (quick scale).
    let config = CharTaskConfig {
        hidden: 192,
        corpus_chars: 24_000,
        batch: 8,
        bptt: 32,
        epochs: 3,
        lr: 3e-3,
        seed: 7,
    };
    let threshold = 0.5;
    println!(
        "training a {}-unit LSTM at threshold {threshold} ...",
        config.hidden
    );
    let mut outcome = train_char(&config, threshold);
    println!(
        "trained: BPC {:.3}, state sparsity {:.1}%",
        outcome.result.metric,
        outcome.result.sparsity * 100.0
    );

    // 2. Freeze both ways: the f32 family and the quantized family of the
    //    *same* trained weights.
    let frozen_f32 = FrozenCharLm::freeze(&mut outcome.model);
    let frozen_q = FrozenQuantizedCharLm::freeze(&mut outcome.model, threshold);
    let vocab = frozen_f32.vocab_size();
    let hidden = frozen_f32.hidden_dim();

    // 3. Proof before throughput: a served quantized stream replays the
    //    golden QuantizedLstm reference bit-for-bit, timestep by timestep.
    let reference = QuantizedLstm::from_cell(outcome.model.lstm().cell(), threshold);
    let mut engine = Engine::new(frozen_q.clone(), EngineConfig::for_threshold(threshold));
    let session = engine.open_session();
    let (mut h, mut c) = (vec![0i8; hidden], vec![0i8; hidden]);
    let mut tok = 1usize;
    for step in 0..50 {
        engine.submit(session, tok).expect("submit");
        engine.step();
        let served = engine.poll(session).expect("session").expect("result");
        let mut one_hot = vec![0.0f32; vocab];
        one_hot[tok] = 1.0;
        let golden = reference.step(&reference.quantize_input(&one_hot), &h, &c);
        let mut head = HeadScratch::new();
        frozen_q.head(
            &StateLanes::from_vec(1, hidden, golden.h.clone()),
            &mut head,
        );
        let expected = head.logits;
        assert_eq!(
            served.logits.len(),
            expected.cols(),
            "logit width diverged at step {step}"
        );
        for (got, want) in served.logits.iter().zip(expected.row(0)) {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "served logits diverged from the accelerator reference at step {step}"
            );
        }
        (h, c) = (golden.h, golden.c);
        tok = served.argmax;
    }
    println!("bit-for-bit vs QuantizedLstm reference: 50/50 timesteps exact");

    // 4. Serve the same traffic through both families' sharded servers.
    let (f32_tps, f32_skip) = serve(frozen_f32, threshold, vocab);
    let (q_tps, q_skip) = serve(frozen_q, threshold, vocab);

    println!("\nserved {STREAMS} concurrent streams x {TOKENS_PER_STREAM} tokens:");
    println!(
        "f32 family        : {f32_tps:>8.1} tok/s   ({:.1}% of Wh fetches skipped)",
        f32_skip * 100.0
    );
    println!(
        "quantized family  : {q_tps:>8.1} tok/s   ({:.1}% of Wh fetches skipped, i8 state)",
        q_skip * 100.0
    );
    println!(
        "integer-path speedup over f32 serving: {:.2}x (weight bytes per fetched row: 4x fewer)",
        q_tps / f32_tps
    );
}
