//! Serving demo for the word-LM family: train a pruned word-level LM
//! (embedding input — the paper's Section II-B2 task), freeze it through
//! the generic `Freezable`/`FrozenModel` path, and serve N concurrent
//! word streams through the sharded `zskip::serve` front-end, collecting
//! results with the select-style `Client::recv_any`.
//!
//! ```sh
//! cargo run --release --example serve_word_lm
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};
use zskip::core::train::{train_word, WordTaskConfig};
use zskip::runtime::FrozenWordLm;
use zskip::serve::{ServeConfig, Server, StreamId};
use zskip::tensor::SeedableStream;

const STREAMS: usize = 8;
const TOKENS_PER_STREAM: usize = 200;

fn main() {
    // 1. Train a pruned word-LM (quick scale; the paper's is
    //    vocab 10k / emb 300 / dh 300 — see WordTaskConfig::paper_scale).
    let config = WordTaskConfig {
        vocab: 400,
        embedding: 32,
        hidden: 96,
        corpus_tokens: 16_000,
        epochs: 2,
        ..WordTaskConfig::default()
    };
    let threshold = 0.3;
    println!(
        "training a {}-unit word-LM (vocab {}, emb {}) at threshold {threshold} ...",
        config.hidden, config.vocab, config.embedding
    );
    let mut outcome = train_word(&config, threshold);
    println!(
        "trained: PPW {:.1}, state sparsity {:.1}%",
        outcome.result.metric,
        outcome.result.sparsity * 100.0
    );

    // 2. Freeze for serving. The embedding-input family serves through
    //    exactly the same generic engine/server as the char-LM: the only
    //    difference is its input_encode (embedding row → dense Wx GEMM).
    let frozen = FrozenWordLm::freeze(&mut outcome.model);
    let vocab = frozen.vocab_size();

    // 3. Serve greedy-decoding word streams through a sharded server.
    //    One driver thread owns all streams: recv_any surfaces whichever
    //    stream's next word is ready, no per-stream polling.
    let server = Server::start(frozen, ServeConfig::for_threshold(threshold).with_shards(2));
    let mut client = server.client();
    let mut rng = SeedableStream::new(17);
    let mut next_word: HashMap<StreamId, usize> = (0..STREAMS)
        .map(|_| (client.open().expect("open"), rng.index(vocab)))
        .collect();

    let start = Instant::now();
    let mut in_flight = 0usize;
    let mut served = 0usize;
    while served < STREAMS * TOKENS_PER_STREAM {
        // Keep every stream primed with its own greedy continuation.
        for (&id, word) in next_word.iter_mut() {
            if *word != usize::MAX {
                client.send(id, *word).expect("send");
                in_flight += 1;
                *word = usize::MAX; // waiting for the result
            }
        }
        while in_flight > 0 {
            let (id, result) = client
                .recv_any(Duration::from_secs(10))
                .expect("a result from some stream");
            in_flight -= 1;
            served += 1;
            if served < STREAMS * TOKENS_PER_STREAM {
                next_word.insert(id, result.argmax);
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();

    let stats = server.stats();
    println!(
        "\nserved {STREAMS} concurrent word streams x {TOKENS_PER_STREAM} tokens: {:.0} tok/s",
        served as f64 / secs
    );
    println!(
        "skip fraction {:.1}% across {} shards ({} batched steps)",
        stats.skip_fraction() * 100.0,
        server.shard_count(),
        stats.steps()
    );
    for ids in next_word.keys() {
        let _ = client.close(*ids);
    }
    drop(client);
    server.shutdown();
}
