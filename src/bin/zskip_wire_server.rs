//! A standalone wire server: loads a frozen-model snapshot, serves it
//! over TCP, and exits when stdin closes.
//!
//! This is the server half of the cross-process determinism harness
//! (`tests/wire_determinism.rs`): the test spawns this binary with a
//! snapshot file, reads the `PORT <n>` line from stdout, drives it
//! with a [`zskip::wire::RemoteClient`], and closes the child's stdin
//! to shut it down. It is also a minimal deployment shape: one
//! snapshot file in, one listening socket out.
//!
//! ```text
//! zskip_wire_server <snapshot> [--threshold T] [--shards N] [--addr HOST:PORT]
//! ```
//!
//! The model family is read from the snapshot header — all five
//! frozen families dispatch through the same loop below.

use std::io::Read;
use zskip::runtime::{
    snapshot::peek_family, FrozenCharLm, FrozenGruCharLm, FrozenQuantizedCharLm,
    FrozenSeqClassifier, FrozenWordLm, ModelFamily,
};
use zskip::serve::{ServeConfig, Server};
use zskip::wire::{TcpServer, WireModel};

struct Args {
    snapshot: String,
    threshold: f32,
    shards: usize,
    addr: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let snapshot = args.next().ok_or(
        "usage: zskip_wire_server <snapshot> [--threshold T] [--shards N] [--addr HOST:PORT]",
    )?;
    let mut parsed = Args {
        snapshot,
        threshold: 0.2,
        shards: 2,
        addr: "127.0.0.1:0".into(),
    };
    while let Some(flag) = args.next() {
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--threshold" => {
                parsed.threshold = value.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            "--shards" => parsed.shards = value.parse().map_err(|e| format!("--shards: {e}"))?,
            "--addr" => parsed.addr = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(parsed)
}

fn serve<M: WireModel>(bytes: &[u8], args: &Args) -> Result<(), String> {
    let model = M::from_snapshot_bytes(bytes).map_err(|e| format!("snapshot rejected: {e}"))?;
    let config = ServeConfig::for_threshold(args.threshold).with_shards(args.shards);
    let server = Server::start(model, config);
    let tcp = TcpServer::bind(server, args.addr.as_str()).map_err(|e| format!("bind: {e}"))?;
    // The harness contract: exactly one `PORT <n>` line on stdout once
    // the listener is live.
    println!("PORT {}", tcp.local_addr().port());
    // Block until the parent closes our stdin, then exit cleanly.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    tcp.shutdown();
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), String> {
        let bytes =
            std::fs::read(&args.snapshot).map_err(|e| format!("read {}: {e}", args.snapshot))?;
        let family = peek_family(&bytes).map_err(|e| format!("snapshot header: {e}"))?;
        match family {
            ModelFamily::CharLm => serve::<FrozenCharLm>(&bytes, &args),
            ModelFamily::GruCharLm => serve::<FrozenGruCharLm>(&bytes, &args),
            ModelFamily::WordLm => serve::<FrozenWordLm>(&bytes, &args),
            ModelFamily::SeqClassifier => serve::<FrozenSeqClassifier>(&bytes, &args),
            ModelFamily::QuantizedCharLm => serve::<FrozenQuantizedCharLm>(&bytes, &args),
        }
    };
    if let Err(e) = run() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
