//! `zskip` — learning to skip ineffectual recurrent computations in LSTMs.
//!
//! A full reproduction of *Ardakani, Ji, Gross, "Learning to Skip
//! Ineffectual Recurrent Computations in LSTMs" (DATE 2019)*: hidden-state
//! threshold pruning with straight-through training, a zero-run offset
//! encoding of the sparse state, and a cycle-level simulator of the
//! proposed 4-tile / 192-PE accelerator together with ESE/CBSR baseline
//! models and a figure-regeneration harness.
//!
//! This crate is a façade: it re-exports the workspace crates under one
//! name so applications can depend on a single package.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `zskip-tensor` | matrices, 8-bit quantization, fixed point, LUT activations |
//! | [`nn`] | `zskip-nn` | LSTM + BPTT, layers, optimizers, task models |
//! | [`data`] | `zskip-data` | synthetic PTB-char/word and digit datasets |
//! | [`core`] | `zskip-core` | state pruning, sparsity analysis, offset encoding, sweeps |
//! | [`accel`] | `zskip-accel` | timing/energy/functional accelerator simulator |
//! | [`baselines`] | `zskip-baselines` | ESE and CBSR analytic models |
//! | [`runtime`] | `zskip-runtime` | batched CPU serving engine that skips ineffectual MACs — generic over the model family (LSTM/GRU char-LM, word-LM, classifier) |
//! | [`serve`] | `zskip-serve` | sharded multi-threaded serving layer: workers, backpressure, TTL, stats, `recv_any` multiplexing |
//! | [`telemetry`] | `zskip-telemetry` | lock-free latency histograms, per-stage step timing, bounded event rings (see `examples/serve_telemetry.rs`) |
//! | [`wire`] | `zskip-wire` | framed TCP protocol, `TcpServer` front-end, blocking `RemoteClient`, frozen-model snapshots over the process boundary (see `docs/WIRE.md`) |
//!
//! # Quickstart
//!
//! ```
//! use zskip::accel::{LstmWorkload, Simulator, SkipTrace, SparsityProfile};
//!
//! // Simulate the paper's headline configuration: PTB-char, batch 8,
//! // 81% joint sparsity.
//! let sim = Simulator::paper();
//! let w = LstmWorkload::ptb_char(8);
//! let dense = sim.run_dense(&w);
//! let trace = SkipTrace::from_profile(
//!     w.dh, w.seq_len, w.batch, SparsityProfile::new(0.81, 0.0), 42);
//! let sparse = sim.run(&w, &trace);
//! assert!(sparse.speedup_over(&dense) > 4.5);
//! ```
//!
//! # Serving
//!
//! Trained pruned models can be served on CPU with real skipping — see
//! [`runtime`] for the train → freeze → serve quickstart,
//! `examples/serve_char_lm.rs` for a multi-stream serving demo, and
//! `examples/serve_word_lm.rs` for the embedding-input family through
//! the sharded `serve` front-end. All four task-model families (char-LM,
//! GRU char-LM, word-LM, sequential classifier) freeze via
//! `zskip::nn::Freezable` and serve through the same generic engine —
//! plus an 8-bit quantized char-LM family
//! (`zskip::runtime::FrozenQuantizedCharLm`, see
//! `examples/serve_quantized.rs`) that serves the accelerator's integer
//! datapath with `i8` session state, bit-identical to
//! [`core::QuantizedLstm`]:
//!
//! ```
//! use zskip::nn::models::CharLm;
//! use zskip::runtime::{Engine, EngineConfig, FrozenCharLm};
//! use zskip::tensor::SeedableStream;
//!
//! let mut rng = SeedableStream::new(1);
//! let mut model = CharLm::new(30, 24, &mut rng);
//! let mut engine = Engine::new(
//!     FrozenCharLm::freeze(&mut model),
//!     EngineConfig::for_threshold(0.2),
//! );
//! let user = engine.open_session();
//! engine.submit(user, 5).unwrap();
//! engine.step();
//! assert!(engine.poll(user).unwrap().is_some());
//! ```
//!
//! See `examples/` for end-to-end walkthroughs (training with pruning,
//! running the simulator, stepping the dataflow, serving).

pub use zskip_accel as accel;
pub use zskip_baselines as baselines;
pub use zskip_core as core;
pub use zskip_data as data;
pub use zskip_nn as nn;
pub use zskip_runtime as runtime;
pub use zskip_serve as serve;
pub use zskip_telemetry as telemetry;
pub use zskip_tensor as tensor;
pub use zskip_wire as wire;
// The vendored serde_json, re-exported so examples and downstream users
// can render the telemetry snapshots (`Serialize` types throughout)
// without declaring the vendored crate themselves.
pub use serde_json;
